package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"llhd"
	"llhd/internal/designs"
	"llhd/internal/moore"
)

// FarmBenchRow is one measured worker count of the session-farm
// throughput benchmark: how many complete elaborate+simulate sessions per
// second the farm sustains over the Table 2 designs.
type FarmBenchRow struct {
	Workers    int     `json:"workers"`
	Sims       int     `json:"sims"`
	Secs       float64 `json:"secs"`
	SimsPerSec float64 `json:"sims_per_sec"`
}

// FarmJobs builds the farm workload: sweeps repetitions of every Table 2
// design on the interpreter (shared frozen module) and the compiled engine
// (shared sealed CompiledDesign). All design preparation — Moore
// compilation, freezing, blaze compilation — happens here, outside any
// timed region, exactly once per design; the returned jobs are reusable
// across Farm.Run calls and worker counts.
func FarmJobs(sweeps int) ([]llhd.FarmJob, error) {
	var jobs []llhd.FarmJob
	for _, d := range designs.All() {
		m, err := moore.Compile(d.Name, d.Source)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", d.Name, err)
		}
		cd, err := llhd.CompileBlaze(m, d.Top)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", d.Name, err)
		}
		for s := 0; s < sweeps; s++ {
			jobs = append(jobs,
				llhd.FarmJob{
					Name: d.Name + "/interp",
					Options: []llhd.SessionOption{
						llhd.FromModule(m), llhd.Top(d.Top), llhd.Backend(llhd.Interp)},
				},
				llhd.FarmJob{
					Name:    d.Name + "/blaze",
					Options: []llhd.SessionOption{llhd.FromCompiled(cd)},
				})
		}
	}
	return jobs, nil
}

// CheckFarmResults returns the first job error, or an error for any
// self-checking testbench that reported assertion failures.
func CheckFarmResults(results []llhd.FarmResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("bench: farm job %s: %w", r.Name, r.Err)
		}
		if r.Stats.AssertionFailures != 0 {
			return fmt.Errorf("bench: farm job %s: %d assertion failures", r.Name, r.Stats.AssertionFailures)
		}
	}
	return nil
}

// RunFarmBench measures farm throughput at each worker count over the
// same prepared workload.
func RunFarmBench(workerCounts []int, sweeps int) ([]FarmBenchRow, error) {
	jobs, err := FarmJobs(sweeps)
	if err != nil {
		return nil, err
	}
	var rows []FarmBenchRow
	for _, w := range workerCounts {
		farm := llhd.Farm{Workers: w}
		t0 := time.Now()
		results := farm.Run(context.Background(), jobs...)
		secs := time.Since(t0).Seconds()
		if err := CheckFarmResults(results); err != nil {
			return nil, err
		}
		rows = append(rows, FarmBenchRow{
			Workers:    w,
			Sims:       len(jobs),
			Secs:       secs,
			SimsPerSec: float64(len(jobs)) / secs,
		})
	}
	return rows, nil
}

// WriteFarmJSON emits the farm throughput rows as the machine-readable
// BENCH_FARM artifact.
func WriteFarmJSON(w io.Writer, rows []FarmBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// PrintFarmBench renders the farm throughput table.
func PrintFarmBench(w io.Writer, rows []FarmBenchRow) {
	fmt.Fprintf(w, "Session farm throughput (Table 2 designs, interp+blaze)\n")
	fmt.Fprintf(w, "%8s %8s %10s %12s %9s\n", "-j", "sims", "secs", "sims/sec", "speedup")
	base := 0.0
	for _, r := range rows {
		if base == 0 {
			base = r.SimsPerSec
		}
		fmt.Fprintf(w, "%8d %8d %10.3f %12.1f %8.2fx\n",
			r.Workers, r.Sims, r.Secs, r.SimsPerSec, r.SimsPerSec/base)
	}
}
