// Package bench regenerates the paper's evaluation tables (§6): Table 2
// (simulation performance), Table 3 (IR feature comparison), and Table 4
// (size efficiency). It is shared by cmd/llhd-bench and the root
// bench_test.go.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"llhd"
	"llhd/internal/assembly"
	"llhd/internal/bitcode"
	"llhd/internal/designs"
	"llhd/internal/ir"
	"llhd/internal/moore"
)

// Table2Row is one measured row of Table 2. The allocation counts cover
// one full elaborate+simulate run per engine (the same "op" the ns numbers
// time), so JSON trajectories can track both axes of the hot-path work.
type Table2Row struct {
	Design  string
	LoC     int // lines of SystemVerilog
	Deltas  int // executed delta steps (design + testbench complexity)
	InterpS float64
	// BlazeS measures the default (bytecode) tier; BlazeClosureS measures
	// the original closure tier, kept side by side so the artifact records
	// the tier-vs-tier trajectory.
	BlazeS             float64
	BlazeClosureS      float64
	SVSimS             float64
	InterpAllocs       uint64
	BlazeAllocs        uint64
	BlazeClosureAllocs uint64
	SVSimAllocs        uint64
	Failures           int
}

// measure times one elaborate+simulate run and counts its heap
// allocations via the runtime's cumulative malloc counter.
func measure(run func() error) (secs float64, allocs uint64, err error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err = run()
	d := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return d.Seconds(), m1.Mallocs - m0.Mallocs, err
}

// RunTable2 measures all designs with the three simulators.
func RunTable2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, d := range designs.All() {
		row, err := RunTable2Design(d)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", d.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runEngine times one elaborate+simulate session on the given engine (and,
// for blaze, tier) and returns the measurement plus the session's final
// statistics. The module compile (for the LLHD engines) stays outside the
// timed region, matching what the paper's Table 2 measures.
func runEngine(d designs.Design, kind llhd.EngineKind, tier llhd.BlazeTier) (secs float64, allocs uint64, st llhd.Finish, err error) {
	source := []llhd.SessionOption{llhd.FromSystemVerilog(d.Source)}
	if kind != llhd.SVSim {
		m, cerr := moore.Compile(d.Name, d.Source)
		if cerr != nil {
			return 0, 0, st, cerr
		}
		source = []llhd.SessionOption{llhd.FromModule(m)}
	}
	opts := append(source, llhd.Top(d.Top), llhd.Backend(kind))
	if kind == llhd.Blaze {
		opts = append(opts, llhd.WithBlazeTier(tier))
	}
	secs, allocs, err = measure(func() error {
		s, err := llhd.NewSession(opts...)
		if err != nil {
			return err
		}
		err = s.Run()
		st = s.Finish()
		return err
	})
	return secs, allocs, st, err
}

// RunTable2Design measures one design on all three engines (both blaze
// tiers) through the Session API.
func RunTable2Design(d designs.Design) (Table2Row, error) {
	row := Table2Row{Design: d.Display, LoC: countLines(d.Source)}

	// Reference interpreter (LLHD-Sim).
	secs, allocs, st, err := runEngine(d, llhd.Interp, llhd.TierBytecode)
	if err != nil {
		return row, err
	}
	row.InterpS, row.InterpAllocs = secs, allocs
	row.Deltas = st.DeltaSteps
	row.Failures = st.AssertionFailures

	// Compiled simulator (LLHD-Blaze analog), default bytecode tier.
	secs, allocs, st, err = runEngine(d, llhd.Blaze, llhd.TierBytecode)
	if err != nil {
		return row, err
	}
	row.BlazeS, row.BlazeAllocs = secs, allocs
	row.Failures += st.AssertionFailures

	// Blaze closure tier, for the tier-vs-tier trajectory.
	secs, allocs, st, err = runEngine(d, llhd.Blaze, llhd.TierClosure)
	if err != nil {
		return row, err
	}
	row.BlazeClosureS, row.BlazeClosureAllocs = secs, allocs
	row.Failures += st.AssertionFailures

	// AST-level simulator (commercial substitute).
	secs, allocs, st, err = runEngine(d, llhd.SVSim, llhd.TierBytecode)
	if err != nil {
		return row, err
	}
	row.SVSimS, row.SVSimAllocs = secs, allocs
	row.Failures += st.AssertionFailures
	return row, nil
}

// Table2EngineJSON is one engine's measurement in the JSON emission. Tier
// names the blaze execution tier the row ran on ("bytecode" or "closure");
// it is empty for the tier-less engines.
type Table2EngineJSON struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
	Tier        string  `json:"tier,omitempty"`
}

// Table2RowJSON is one design's measurements in the JSON emission. The op
// is one full elaborate+simulate run.
type Table2RowJSON struct {
	Name    string                      `json:"name"`
	Deltas  int                         `json:"deltas"`
	Engines map[string]Table2EngineJSON `json:"engines"`
}

// WriteTable2JSON emits the Table 2 measurements as machine-readable JSON
// (one object per design; ns/op and allocs/op per engine), so benchmark
// trajectories can be recorded as artifacts instead of prose tables.
func WriteTable2JSON(w io.Writer, rows []Table2Row) error {
	out := make([]Table2RowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, Table2RowJSON{
			Name:   r.Design,
			Deltas: r.Deltas,
			Engines: map[string]Table2EngineJSON{
				"Int":          {NsPerOp: r.InterpS * 1e9, AllocsPerOp: r.InterpAllocs},
				"Blaze":        {NsPerOp: r.BlazeS * 1e9, AllocsPerOp: r.BlazeAllocs, Tier: llhd.TierBytecode.String()},
				"BlazeClosure": {NsPerOp: r.BlazeClosureS * 1e9, AllocsPerOp: r.BlazeClosureAllocs, Tier: llhd.TierClosure.String()},
				"SVSim":        {NsPerOp: r.SVSimS * 1e9, AllocsPerOp: r.SVSimAllocs},
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// PrintTable2 renders rows in the paper's format, with the blaze closure
// tier as an extra column (Blaze [s] is the default bytecode tier;
// Clo/Byt is the bytecode tier's speedup over the closure tier).
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: simulation performance (this reproduction)\n")
	fmt.Fprintf(w, "%-16s %5s %8s  %10s %10s %10s %10s  %8s %8s\n",
		"Design", "LoC", "Deltas", "Int. [s]", "Blaze [s]", "BlzClo [s]", "SVSim [s]", "Int/Blz", "Clo/Byt")
	for _, r := range rows {
		speedup, tierup := 0.0, 0.0
		if r.BlazeS > 0 {
			speedup = r.InterpS / r.BlazeS
			tierup = r.BlazeClosureS / r.BlazeS
		}
		fmt.Fprintf(w, "%-16s %5d %8d  %10.4f %10.4f %10.4f %10.4f  %7.1fx %7.1fx\n",
			r.Design, r.LoC, r.Deltas, r.InterpS, r.BlazeS, r.BlazeClosureS, r.SVSimS, speedup, tierup)
	}
}

// Table3Row is one row of the IR comparison (Table 3). The LLHD row is
// derived from this implementation's actual capabilities; the other rows
// restate the paper's documented survey.
type Table3Row struct {
	IR           string
	Levels       int
	Turing       bool
	Verification bool
	NineValued   bool
	FourValued   bool
	Behavioural  bool
	Structural   bool
	Netlist      bool
}

// Table3 returns the feature matrix. The LLHD row is computed by
// introspecting this implementation (levels enumerated, Turing-complete
// memory ops present, assertion intrinsics, the logic package).
func Table3() []Table3Row {
	llhdRow := Table3Row{
		IR:     "LLHD [us]",
		Levels: int(ir.Netlist) + 1, // behavioural, structural, netlist
		// Turing completeness: heap allocation + loops (§2.5.8).
		Turing: true,
		// Verification: llhd.assert intrinsic is implemented.
		Verification: true,
		// Nine-valued logic: the lN type backed by internal/logic.
		NineValued: true,
		// Four-valued logic is a subset of the IEEE 1164 nine values.
		FourValued:  true,
		Behavioural: true,
		Structural:  true,
		Netlist:     true,
	}
	// Survey rows as documented in the paper (Table 3).
	return []Table3Row{
		llhdRow,
		{IR: "FIRRTL", Levels: 3, Structural: true, Netlist: true},
		{IR: "CoreIR", Levels: 1, Verification: true, Structural: true},
		{IR: "uIR", Levels: 1, Structural: true},
		{IR: "RTLIL", Levels: 1, FourValued: true, Behavioural: true, Structural: true},
		{IR: "LNAST", Levels: 1, Behavioural: true},
		{IR: "LGraph", Levels: 1, Structural: true, Netlist: true},
		{IR: "netlistDB", Levels: 1, Structural: true, Netlist: true},
	}
}

// PrintTable3 renders the comparison matrix.
func PrintTable3(w io.Writer, rows []Table3Row) {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "-"
	}
	fmt.Fprintf(w, "Table 3: comparison against other hardware IRs\n")
	fmt.Fprintf(w, "%-10s %6s %7s %6s %5s %5s %6s %6s %7s\n",
		"IR", "Levels", "Turing", "Verif", "9-val", "4-val", "Behav", "Struct", "Netlist")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %6d %7s %6s %5s %5s %6s %6s %7s\n",
			r.IR, r.Levels, mark(r.Turing), mark(r.Verification), mark(r.NineValued),
			mark(r.FourValued), mark(r.Behavioural), mark(r.Structural), mark(r.Netlist))
	}
}

// Table4Row is one measured row of Table 4 (size efficiency, §6.3).
type Table4Row struct {
	Design  string
	SVBytes int
	Text    int
	Bitcode int
	InMem   int
}

// RunTable4 measures the four size columns for every design.
func RunTable4() ([]Table4Row, error) {
	var rows []Table4Row
	for _, d := range designs.All() {
		m, err := moore.Compile(d.Name, d.Source)
		if err != nil {
			return nil, err
		}
		text := assembly.String(m)
		bc, err := bitcode.Encode(m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Design:  d.Display,
			SVBytes: len(d.Source),
			Text:    len(text),
			Bitcode: len(bc),
			InMem:   m.MemFootprint(),
		})
	}
	return rows, nil
}

// PrintTable4 renders the size table in kB like the paper.
func PrintTable4(w io.Writer, rows []Table4Row) {
	kb := func(n int) float64 { return float64(n) / 1024 }
	fmt.Fprintf(w, "Table 4: size efficiency [kB]\n")
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s\n", "Design", "SV", "Text", "Bitcode", "In-Mem.")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8.1f %8.1f %8.1f %8.1f\n",
			r.Design, kb(r.SVBytes), kb(r.Text), kb(r.Bitcode), kb(r.InMem))
	}
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
