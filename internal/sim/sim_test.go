package sim

import (
	"fmt"
	"testing"

	"llhd/internal/assembly"
	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// counterSrc drives a free-running clock and counts rising edges.
const counterSrc = `
entity @top () -> () {
  %zero1 = const i1 0
  %zero8 = const i32 0
  %clk = sig i1 %zero1
  %count = sig i32 %zero8
  inst @clkgen () -> (i1$ %clk)
  inst @counter (i1$ %clk) -> (i32$ %count)
}
proc @clkgen () -> (i1$ %clk) {
 entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %half = const time 5ns
  %n = const i32 20
  %zero = const i32 0
  %one = const i32 1
  %i = var i32 %zero
  br %loop
 loop:
  drv i1$ %clk, %b1 after %half
  wait %lo for %half
 lo:
  drv i1$ %clk, %b0 after %half
  wait %next for %half
 next:
  %ip = ld i32* %i
  %in = add i32 %ip, %one
  st i32* %i, %in
  %more = ult i32 %in, %n
  br %more, %end, %loop
 end:
  halt
}
proc @counter (i1$ %clk) -> (i32$ %count) {
 init:
  %one = const i32 1
  %dz = const time 0s
  %clk0 = prb i1$ %clk
  wait %check for %clk
 check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %pos = and i1 %chg, %clk1
  br %pos, %init, %bump
 bump:
  %c = prb i32$ %count
  %cn = add i32 %c, %one
  drv i32$ %count, %cn after %dz
  br %init
}
`

func TestCounterSimulation(t *testing.T) {
	m := assembly.MustParse("counter", counterSrc)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	count := s.Engine.SignalByName("top.count")
	if count == nil {
		t.Fatal("top.count signal not found")
	}
	// 20 half-period pairs = 20 rising edges.
	if got := count.Value().Bits; got != 20 {
		t.Errorf("count = %d, want 20", got)
	}
}

// accSrc is an accumulator with delta-cycle feedback (no artificial
// delays) plus a self-checking testbench using llhd.assert.
const accSrc = `
entity @acc_top () -> () {
  %z1 = const i1 0
  %z32 = const i32 0
  %clk = sig i1 %z1
  %en = sig i1 %z1
  %x = sig i32 %z32
  %q = sig i32 %z32
  inst @dut (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q)
  inst @driver (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en)
}
proc @dut (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
 init:
  %dz = const time 0s
  %clk0 = prb i1$ %clk
  wait %check for %clk
 check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %pos = and i1 %chg, %clk1
  br %pos, %init, %accum
 accum:
  %enp = prb i1$ %en
  %qp = prb i32$ %q
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %q, %sum after %dz if %enp
  br %init
}
proc @driver (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en) {
 entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %zero = const i32 0
  %one = const i32 1
  %last = const i32 100
  %d1 = const time 1ns
  %i = var i32 %zero
  drv i1$ %en, %b1 after %d1
  wait %loop for %d1
 loop:
  %ip = ld i32* %i
  drv i32$ %x, %ip after %d1
  wait %hi for %d1
 hi:
  drv i1$ %clk, %b1 after %d1
  wait %lo for %d1
 lo:
  drv i1$ %clk, %b0 after %d1
  wait %checkq for %d1
 checkq:
  %qp = prb i32$ %q
  call void @expect (i32 %ip, i32 %qp)
  %in = add i32 %ip, %one
  st i32* %i, %in
  %more = ult i32 %ip, %last
  br %more, %done, %loop
 done:
  halt
}
func @expect (i32 %i, i32 %q) void {
 entry:
  %one = const i32 1
  %two = const i32 2
  %ip1 = add i32 %i, %one
  %prod = mul i32 %i, %ip1
  %want = udiv i32 %prod, %two
  %ok = eq i32 %want, %q
  call void @llhd.assert (i1 %ok)
  ret
}
`

func TestAccumulatorSelfChecking(t *testing.T) {
	m := assembly.MustParse("acc", accSrc)
	s, err := New(m, "acc_top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Engine.Failures != 0 {
		t.Errorf("%d assertion failures; accumulator mismatch", s.Engine.Failures)
	}
	q := s.Engine.SignalByName("acc_top.q")
	if got, want := q.Value().Bits, uint64(100*101/2); got != want {
		t.Errorf("final q = %d, want %d", got, want)
	}
}

// figure2 is the testbench of Figure 2 plus the accumulator of Figure 5.
// The exact delays in the paper make the check an illustration rather than
// a passing assertion under strict event semantics; the test verifies that
// the design elaborates, simulates to completion, and halts.
const figure2 = `
entity @acc_tb () -> () {
  %zero0 = const i1 0
  %zero1 = const i32 0
  %clk = sig i1 %zero0
  %en = sig i1 %zero0
  %x = sig i32 %zero1
  %q = sig i32 %zero1
  inst @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q)
  inst @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en)
}
proc @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en) {
 entry:
  %bit0 = const i1 0
  %bit1 = const i1 1
  %zero = const i32 0
  %one = const i32 1
  %many = const i32 1337
  %del1ns = const time 1ns
  %del2ns = const time 2ns
  %i = var i32 %zero
  drv i1$ %en, %bit1 after %del2ns
  br %loop
 loop:
  %ip = ld i32* %i
  drv i32$ %x, %ip after %del2ns
  drv i1$ %clk, %bit1 after %del1ns
  drv i1$ %clk, %bit0 after %del2ns
  wait %next for %del2ns
 next:
  %qp = prb i32$ %q
  %in = add i32 %ip, %one
  st i32* %i, %in
  %cont = ult i32 %ip, %many
  br %cont, %end, %loop
 end:
  halt
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q)
  inst @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d)
}
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
 init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
 check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
 event:
  %dp = prb i32$ %d
  %delay = const time 1ns
  drv i32$ %q, %dp after %delay
  br %init
}
proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
 entry:
  %qp = prb i32$ %q
  %enp = prb i1$ %en
  %delay = const time 2ns
  drv i32$ %d, %qp after %delay
  br %enp, %final, %enabled
 enabled:
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %d, %sum after %delay
  br %final
 final:
  wait %entry for %q, %x, %en
}
`

func TestFigure2RunsToCompletion(t *testing.T) {
	m := assembly.MustParse("acc_tb", figure2)
	s, err := New(m, "acc_tb")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// The testbench runs 1338 iterations of 2 ns each.
	if s.Engine.Now.Fs < 1338*2*ir.Nanosecond {
		t.Errorf("simulation ended at %v, want >= 2676ns", s.Engine.Now)
	}
	// q accumulated a nonzero sum of the driven x values.
	q := s.Engine.SignalByName("acc_tb.q")
	if q.Value().Bits == 0 {
		t.Error("q never accumulated")
	}
}

// TestStructuralAccEquivalence lowers the accumulator flip-flop to an
// entity with reg (Figure 5k) by hand and checks it behaves like the
// behavioural process version.
func TestStructuralRegEntity(t *testing.T) {
	src := `
entity @top () -> () {
  %z1 = const i1 0
  %z32 = const i32 0
  %clk = sig i1 %z1
  %d = sig i32 %z32
  %q = sig i32 %z32
  inst @ff (i1$ %clk, i32$ %d) -> (i32$ %q)
  inst @stim (i32$ %q) -> (i1$ %clk, i32$ %d)
}
entity @ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
  %delay = const time 1ns
  %clkp = prb i1$ %clk
  %dp = prb i32$ %d
  reg i32$ %q, %dp rise %clkp after %delay
}
proc @stim (i32$ %q) -> (i1$ %clk, i32$ %d) {
 entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %k = const i32 42
  %d2 = const time 2ns
  drv i32$ %d, %k after %d2
  wait %hi for %d2
 hi:
  drv i1$ %clk, %b1 after %d2
  wait %lo for %d2
 lo:
  drv i1$ %clk, %b0 after %d2
  wait %done for %d2
 done:
  halt
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	q := s.Engine.SignalByName("top.q")
	if got := q.Value().Bits; got != 42 {
		t.Errorf("q = %d, want 42 (captured on rising edge)", got)
	}
}

// TestRegGate checks that an "if" gate suppresses the store.
func TestRegGate(t *testing.T) {
	src := `
entity @top () -> () {
  %z1 = const i1 0
  %z32 = const i32 0
  %clk = sig i1 %z1
  %en = sig i1 %z1
  %d = sig i32 %z32
  %q = sig i32 %z32
  inst @ff (i1$ %clk, i1$ %en, i32$ %d) -> (i32$ %q)
  inst @stim () -> (i1$ %clk, i1$ %en, i32$ %d)
}
entity @ff (i1$ %clk, i1$ %en, i32$ %d) -> (i32$ %q) {
  %delay = const time 1ns
  %clkp = prb i1$ %clk
  %enp = prb i1$ %en
  %dp = prb i32$ %d
  reg i32$ %q, %dp rise %clkp if %enp after %delay
}
proc @stim () -> (i1$ %clk, i1$ %en, i32$ %d) {
 entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %k = const i32 7
  %d2 = const time 2ns
  drv i32$ %d, %k after %d2
  wait %edge1 for %d2
 edge1:
  drv i1$ %clk, %b1 after %d2
  wait %edge1b for %d2
 edge1b:
  drv i1$ %clk, %b0 after %d2
  wait %enable for %d2
 enable:
  drv i1$ %en, %b1 after %d2
  wait %edge2 for %d2
 edge2:
  drv i1$ %clk, %b1 after %d2
  wait %done for %d2
 done:
  halt
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &engine.TraceObserver{}
	s.Engine.Observe(obs)
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	q := s.Engine.SignalByName("top.q")
	if got := q.Value().Bits; got != 7 {
		t.Errorf("q = %d, want 7 (second edge is enabled)", got)
	}
	// The first edge was gated off: q must have changed exactly once.
	changes := 0
	for _, te := range obs.Entries {
		if te.Sig == q {
			changes++
		}
	}
	if changes != 1 {
		t.Errorf("q changed %d times, want 1 (first edge gated)", changes)
	}
}

// TestSignalProjection drives and probes struct fields through extf on
// signals (§2.5.6).
func TestSignalProjection(t *testing.T) {
	src := `
entity @top () -> () {
  %z8 = const i8 0
  %z16 = const i16 0
  %init = {i8 %z8, i16 %z16}
  %s = sig {i8, i16} %init
  inst @writer () -> ({i8, i16}$ %s)
}
proc @writer () -> ({i8, i16}$ %s) {
 entry:
  %f0 = extf i8$ %s, 0
  %f1 = extf i16$ %s, 1
  %a = const i8 170
  %b = const i16 4919
  %d1 = const time 1ns
  drv i8$ %f0, %a after %d1
  drv i16$ %f1, %b after %d1
  wait %check for %d1
 check:
  %got = prb i8$ %f0
  %want = const i8 170
  %ok = eq i8 %got, %want
  call void @llhd.assert (i1 %ok)
  halt
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Engine.Failures != 0 {
		t.Errorf("%d assertion failures", s.Engine.Failures)
	}
	sig := s.Engine.SignalByName("top.s")
	want := val.Agg([]val.Value{val.Int(8, 170), val.Int(16, 4919)})
	if !sig.Value().Eq(want) {
		t.Errorf("s = %v, want %v", sig.Value(), want)
	}
}

// TestConConnection checks bidirectional con forwarding.
func TestConConnection(t *testing.T) {
	src := `
entity @top () -> () {
  %z = const i8 0
  %a = sig i8 %z
  %b = sig i8 %z
  con i8$ %a, %b
  inst @writer () -> (i8$ %a)
}
proc @writer () -> (i8$ %a) {
 entry:
  %k = const i8 99
  %d1 = const time 1ns
  drv i8$ %a, %k after %d1
  wait %done for %d1
 done:
  halt
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	b := s.Engine.SignalByName("top.b")
	if got := b.Value().Bits; got != 99 {
		t.Errorf("b = %d, want 99 (forwarded through con)", got)
	}
}

// TestDelTransport checks the del transport-delay instruction.
func TestDelTransport(t *testing.T) {
	src := `
entity @top () -> () {
  %z = const i8 0
  %in = sig i8 %z
  %out = sig i8 %z
  %d5 = const time 5ns
  del i8$ %out, %in, %d5
  inst @writer () -> (i8$ %in)
}
proc @writer () -> (i8$ %in) {
 entry:
  %k = const i8 123
  %d1 = const time 1ns
  %d3 = const time 3ns
  drv i8$ %in, %k after %d1
  wait %mid for %d3
 mid:
  halt
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Engine.Init()
	// After 3ns the input changed but the output must still be 0.
	s.Engine.Run(ir.Time{Fs: 3 * ir.Nanosecond})
	out := s.Engine.SignalByName("top.out")
	if got := out.Value().Bits; got != 0 {
		t.Errorf("out = %d before delay elapsed, want 0", got)
	}
	s.Engine.Run(ir.Time{})
	if err := s.Engine.Err(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := out.Value().Bits; got != 123 {
		t.Errorf("out = %d after delay, want 123", got)
	}
}

// TestMultipleAssertsCount checks that the engine counts every failure.
func TestMultipleAssertsCount(t *testing.T) {
	src := `
entity @top () -> () {
  inst @p () -> ()
}
proc @p () -> () {
 entry:
  %bad = const i1 0
  call void @llhd.assert (i1 %bad)
  call void @llhd.assert (i1 %bad)
  %good = const i1 1
  call void @llhd.assert (i1 %good)
  halt
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Engine.Failures != 2 {
		t.Errorf("failures = %d, want 2", s.Engine.Failures)
	}
}

// TestFunctionRecursion exercises the immediate function interpreter with
// a recursive factorial.
func TestFunctionRecursion(t *testing.T) {
	src := `
entity @top () -> () {
  inst @p () -> ()
}
proc @p () -> () {
 entry:
  %n = const i32 10
  %f = call i32 @fact (i32 %n)
  %want = const i32 3628800
  %ok = eq i32 %f, %want
  call void @llhd.assert (i1 %ok)
  halt
}
func @fact (i32 %n) i32 {
 entry:
  %one = const i32 1
  %base = ule i32 %n, %one
  br %base, %rec, %ret1
 ret1:
  ret i32 %one
 rec:
  %nm1 = sub i32 %n, %one
  %sub = call i32 @fact (i32 %nm1)
  %r = mul i32 %n, %sub
  ret i32 %r
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Engine.Failures != 0 {
		t.Errorf("factorial mismatch: %d failures", s.Engine.Failures)
	}
}

func TestElaborationErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		top  string
	}{
		{"missing top", `entity @x () -> () {}`, "nope"},
		{"func top", `func @f () void { entry: ret }`, "f"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := assembly.MustParse("m", c.src)
			if _, err := New(m, c.top); err == nil {
				t.Error("New unexpectedly succeeded")
			}
		})
	}
}

func TestTraceRecordsChanges(t *testing.T) {
	m := assembly.MustParse("counter", counterSrc)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	obs := &engine.TraceObserver{}
	s.Engine.Observe(obs)
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	clk := s.Engine.SignalByName("top.clk")
	edges := 0
	for _, te := range obs.Entries {
		if te.Sig == clk {
			edges++
		}
	}
	if edges != 40 {
		t.Errorf("clk changed %d times, want 40 (20 cycles)", edges)
	}
	// The buffered trace must be time-ordered.
	for i := 1; i < len(obs.Entries); i++ {
		if obs.Entries[i].Time.Before(obs.Entries[i-1].Time) {
			t.Fatalf("trace out of order at %d", i)
		}
	}
}

func ExampleSimulator() {
	m := assembly.MustParse("counter", counterSrc)
	s, _ := New(m, "top")
	s.Run(ir.Time{})
	count := s.Engine.SignalByName("top.count")
	fmt.Println("count =", count.Value())
	// Output: count = 20
}
