package sim

import (
	"fmt"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// frame is the slot-indexed runtime environment of one interpreted unit
// activation: a flat value array indexed by the unit's ir.Numbering, plus a
// generation stamp per slot so a wake or call can invalidate every
// non-constant slot with a single counter bump instead of clearing (or
// worse, re-allocating) the storage. It replaces the map[ir.Value]
// environments the interpreter used to hash on every operand access.
//
// Slots stamped constStamp hold elaboration-time constants: they survive
// reset, so the const prefix of an entity frame is copied exactly once.
type frame struct {
	vals  []val.Value
	stamp []uint64
	gen   uint64

	// Stack memory for var/alloc results, indexed by the same numbering and
	// materialized on the first var/alloc execution (most entities and many
	// processes never touch memory). Slots are live iff their stamp matches
	// gen, so resetting a pooled function frame invalidates them for free.
	mem      []memSlot
	memStamp []uint64

	// Reusable scratch for simultaneous phi assignment on block entry.
	phiVals []val.Value
	phiIDs  []int

	// lookup adapts the frame to engine.EvalPure's operand callback. It is
	// built once per frame so the hot loop never allocates a closure.
	lookup func(ir.Value) (val.Value, bool)
}

// memSlot is one var/alloc memory cell.
type memSlot struct {
	v     val.Value
	freed bool
}

// sigTable is the dense signal-reference table shared by the process and
// entity interpreters: elaborated bindings seeded from the instance, plus
// signal projections (extf/exts on signals) recorded at runtime.
type sigTable struct {
	sigs     []engine.SigRef // value ID -> signal reference
	sigKnown []bool
}

// seedSigs sizes the table and copies the instance's elaborated bindings.
func (t *sigTable) seedSigs(inst *engine.Instance, n int) {
	t.sigs = make([]engine.SigRef, n)
	t.sigKnown = make([]bool, n)
	refs, bound := inst.BindTable()
	copy(t.sigs, refs)
	copy(t.sigKnown, bound)
}

// sigOf resolves an operand to a signal reference, if it is one.
func (t *sigTable) sigOf(v ir.Value) (engine.SigRef, bool) {
	if id := ir.ValueID(v); id >= 0 && t.sigKnown[id] {
		return t.sigs[id], true
	}
	return engine.SigRef{}, false
}

// setSig records a runtime signal projection.
func (t *sigTable) setSig(v ir.Value, r engine.SigRef) {
	if id := ir.ValueID(v); id >= 0 {
		t.sigs[id] = r
		t.sigKnown[id] = true
	}
}

// constStamp marks a slot holding an elaboration-time constant; such slots
// are valid under every generation.
const constStamp = ^uint64(0)

// newFrame returns a frame with n value slots.
func newFrame(n int) *frame {
	f := &frame{
		vals:  make([]val.Value, n),
		stamp: make([]uint64, n),
		gen:   1,
	}
	f.lookup = func(x ir.Value) (val.Value, bool) {
		if id := ir.ValueID(x); id >= 0 {
			return f.get(id)
		}
		return val.Value{}, false
	}
	return f
}

// seedConst installs an elaboration-time constant that survives reset.
func (f *frame) seedConst(id int, v val.Value) {
	f.vals[id] = v
	f.stamp[id] = constStamp
}

// reset invalidates every non-constant value and memory slot in O(1).
func (f *frame) reset() {
	f.gen++
	if f.gen == constStamp { // wrapped: rewind all runtime stamps
		for i, s := range f.stamp {
			if s != constStamp {
				f.stamp[i] = 0
			}
		}
		clear(f.memStamp)
		f.gen = 1
	}
}

// get returns the value in slot id, if it was computed this generation (or
// is a constant).
func (f *frame) get(id int) (val.Value, bool) {
	if s := f.stamp[id]; s == f.gen || s == constStamp {
		return f.vals[id], true
	}
	return val.Value{}, false
}

// set stores v into slot id. Writes to constant slots keep the constant
// stamp: re-executing an elaboration-folded pure instruction recomputes the
// identical value, so the slot stays valid across resets either way.
func (f *frame) set(id int, v val.Value) {
	if f.stamp[id] != constStamp {
		f.stamp[id] = f.gen
	}
	f.vals[id] = v
}

// defineMem (re-)binds the memory slot id to the init value, reviving a
// freed slot, matching stack-slot semantics for re-executed var/alloc. The
// memory store materializes on first use.
func (f *frame) defineMem(id int, init val.Value) {
	if f.mem == nil {
		f.mem = make([]memSlot, len(f.vals))
		f.memStamp = make([]uint64, len(f.vals))
	}
	f.mem[id] = memSlot{v: init}
	f.memStamp[id] = f.gen
}

// intAt reads slot id as a scalar integer without copying the value
// struct. ok is false when the slot is stale or holds a non-integer.
func (f *frame) intAt(v ir.Value) (bits uint64, w int, ok bool) {
	id := ir.ValueID(v)
	if id < 0 {
		return 0, 0, false
	}
	if s := f.stamp[id]; s != f.gen && s != constStamp {
		return 0, 0, false
	}
	p := &f.vals[id]
	if p.Kind != val.KindInt {
		return 0, 0, false
	}
	return p.Bits, p.Width, true
}

// boolAt reads slot id as a truth value (nonzero integer) without copying.
func (f *frame) boolAt(v ir.Value) (truth bool, ok bool) {
	bits, _, ok := f.intAt(v)
	return bits != 0, ok
}

// setInt stores a width-w integer into slot id in place, writing only the
// scalar fields instead of copying a whole value struct.
func (f *frame) setInt(id, w int, bits uint64) {
	if f.stamp[id] != constStamp {
		f.stamp[id] = f.gen
	}
	p := &f.vals[id]
	p.Kind = val.KindInt
	p.Width = w
	p.Bits = ir.MaskWidth(bits, w)
	p.L = nil
	p.Elems = nil
}

// evalFast executes the scalar-integer pure ops — constants, not/neg,
// binary arithmetic, comparisons, and integer slice extract/insert —
// directly on frame slots through pointers. The generic engine.EvalPure
// path moves every operand and result by value, which is a ~100-byte
// struct copy each; on the interpreter's hot rows that copying dominates
// the profile, so the common cases are special-cased here. It reports
// handled=false when the op or its runtime operand kinds (logic vectors,
// aggregates, times, unavailable operands) need the generic evaluator,
// which also owns all error reporting.
func (f *frame) evalFast(in *ir.Inst) bool {
	op := in.Op
	switch {
	case op == ir.OpConstInt:
		ty := in.Ty
		w := ty.Width
		if ty.IsEnum() {
			w = ty.BitWidth()
		} else if !ty.IsInt() {
			w = 1
		}
		f.setInt(ir.ValueID(in), w, in.IVal)
		return true

	case op == ir.OpNot:
		a, w, ok := f.intAt(in.Args[0])
		if !ok {
			return false
		}
		f.setInt(ir.ValueID(in), w, ^a)
		return true

	case op == ir.OpNeg:
		a, w, ok := f.intAt(in.Args[0])
		if !ok {
			return false
		}
		f.setInt(ir.ValueID(in), w, -a)
		return true

	case op == ir.OpExtS:
		a, w, ok := f.intAt(in.Args[0])
		if !ok || in.Imm0 < 0 || in.Imm0+in.Imm1 > w {
			return false
		}
		f.setInt(ir.ValueID(in), in.Imm1, a>>uint(in.Imm0))
		return true

	case op == ir.OpInsS:
		a, w, ok := f.intAt(in.Args[0])
		if !ok || in.Imm0 < 0 || in.Imm0+in.Imm1 > w {
			return false
		}
		v, _, ok := f.intAt(in.Args[1])
		if !ok {
			return false
		}
		mask := ir.MaskWidth(^uint64(0), in.Imm1) << uint(in.Imm0)
		f.setInt(ir.ValueID(in), w, a&^mask|v<<uint(in.Imm0)&mask)
		return true

	case op.IsBinary() || op.IsCompare():
		a, wa, ok := f.intAt(in.Args[0])
		if !ok {
			return false
		}
		b, wb, ok := f.intAt(in.Args[1])
		if !ok {
			return false
		}
		id := ir.ValueID(in)
		switch op {
		case ir.OpAnd:
			f.setInt(id, wa, a&b)
		case ir.OpOr:
			f.setInt(id, wa, a|b)
		case ir.OpXor:
			f.setInt(id, wa, a^b)
		case ir.OpAdd:
			f.setInt(id, wa, a+b)
		case ir.OpSub:
			f.setInt(id, wa, a-b)
		case ir.OpMul:
			f.setInt(id, wa, a*b)
		case ir.OpShl:
			if b >= 64 {
				f.setInt(id, wa, 0)
			} else {
				f.setInt(id, wa, a<<b)
			}
		case ir.OpShr:
			if b >= 64 {
				f.setInt(id, wa, 0)
			} else {
				f.setInt(id, wa, a>>b)
			}
		case ir.OpAshr:
			sh := b
			if sh >= uint64(wa) {
				sh = uint64(wa - 1)
			}
			f.setInt(id, wa, uint64(ir.SignExtend(a, wa)>>sh))
		case ir.OpEq:
			f.setBool(id, wa == wb && a == b)
		case ir.OpNeq:
			f.setBool(id, wa != wb || a != b)
		case ir.OpUlt:
			f.setBool(id, a < b)
		case ir.OpUgt:
			f.setBool(id, a > b)
		case ir.OpUle:
			f.setBool(id, a <= b)
		case ir.OpUge:
			f.setBool(id, a >= b)
		case ir.OpSlt:
			f.setBool(id, ir.SignExtend(a, wa) < ir.SignExtend(b, wa))
		case ir.OpSgt:
			f.setBool(id, ir.SignExtend(a, wa) > ir.SignExtend(b, wa))
		case ir.OpSle:
			f.setBool(id, ir.SignExtend(a, wa) <= ir.SignExtend(b, wa))
		case ir.OpSge:
			f.setBool(id, ir.SignExtend(a, wa) >= ir.SignExtend(b, wa))
		default:
			// udiv/sdiv/umod/smod: the generic path owns the
			// division-by-zero diagnostics.
			return false
		}
		return true
	}
	return false
}

// setBool stores an i1 result.
func (f *frame) setBool(id int, b bool) {
	if b {
		f.setInt(id, 1, 1)
	} else {
		f.setInt(id, 1, 0)
	}
}

// memOf resolves a pointer operand to its live memory slot.
func (f *frame) memOf(ptr ir.Value) (*memSlot, error) {
	in, ok := ptr.(*ir.Inst)
	if !ok {
		return nil, fmt.Errorf("pointer %s is not var/alloc result", ptr)
	}
	id := ir.ValueID(in)
	if id < 0 || id >= len(f.mem) || f.memStamp[id] != f.gen {
		return nil, fmt.Errorf("pointer %s not materialized", ptr)
	}
	s := &f.mem[id]
	if s.freed {
		return nil, fmt.Errorf("use after free through %s", ptr)
	}
	return s, nil
}
