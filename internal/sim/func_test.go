package sim

import (
	"testing"

	"llhd/internal/assembly"
	"llhd/internal/ir"
)

// TestFuncNestedCallChain exercises the pooled function frames across a
// three-deep call chain evaluated many times from a process loop: each
// level must get its own frame, and frames released by inner calls must not
// corrupt the callers'.
func TestFuncNestedCallChain(t *testing.T) {
	src := `
entity @top () -> () {
  inst @p () -> ()
}
proc @p () -> () {
 entry:
  %zero = const i32 0
  %one = const i32 1
  %n = const i32 50
  %i = var i32 %zero
  br %loop
 loop:
  %ip = ld i32* %i
  %got = call i32 @outer (i32 %ip)
  ; outer(x) = middle(x)*2 + 1 = (inner(x)+3)*2 + 1 = ((x*x)+3)*2+1
  %sq = mul i32 %ip, %ip
  %three = const i32 3
  %two = const i32 2
  %t0 = add i32 %sq, %three
  %t1 = mul i32 %t0, %two
  %want = add i32 %t1, %one
  %ok = eq i32 %got, %want
  call void @llhd.assert (i1 %ok)
  %in = add i32 %ip, %one
  st i32* %i, %in
  %more = ult i32 %in, %n
  br %more, %end, %loop
 end:
  halt
}
func @outer (i32 %x) i32 {
 entry:
  %m = call i32 @middle (i32 %x)
  %two = const i32 2
  %one = const i32 1
  %d = mul i32 %m, %two
  %r = add i32 %d, %one
  ret i32 %r
}
func @middle (i32 %x) i32 {
 entry:
  %i = call i32 @inner (i32 %x)
  %three = const i32 3
  %r = add i32 %i, %three
  ret i32 %r
}
func @inner (i32 %x) i32 {
 entry:
  %r = mul i32 %x, %x
  ret i32 %r
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Engine.Failures != 0 {
		t.Errorf("%d assertion failures in nested call chain", s.Engine.Failures)
	}
}

// TestFuncStackSlots exercises var/ld/st stack memory inside a function:
// a loop that accumulates through a stack slot, with the slot re-bound on
// every call (pooled frames must not leak a previous call's memory).
func TestFuncStackSlots(t *testing.T) {
	src := `
entity @top () -> () {
  inst @p () -> ()
}
proc @p () -> () {
 entry:
  %five = const i32 5
  %seven = const i32 7
  ; sumto(5) = 15, sumto(7) = 28: the accumulator var must restart at 0
  ; on the second call even though the pooled frame is reused.
  %a = call i32 @sumto (i32 %five)
  %wa = const i32 15
  %oka = eq i32 %a, %wa
  call void @llhd.assert (i1 %oka)
  %b = call i32 @sumto (i32 %seven)
  %wb = const i32 28
  %okb = eq i32 %b, %wb
  call void @llhd.assert (i1 %okb)
  halt
}
func @sumto (i32 %n) i32 {
 entry:
  %zero = const i32 0
  %one = const i32 1
  %acc = var i32 %zero
  %i = var i32 %zero
  br %loop
 loop:
  %iv = ld i32* %i
  %more = ult i32 %iv, %n
  br %more, %done, %body
 body:
  %in = add i32 %iv, %one
  st i32* %i, %in
  %av = ld i32* %acc
  %an = add i32 %av, %in
  st i32* %acc, %an
  br %loop
 done:
  %r = ld i32* %acc
  ret i32 %r
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s.Engine.Failures != 0 {
		t.Errorf("%d assertion failures in stack-slot function", s.Engine.Failures)
	}
}

// TestFuncUseAfterFree pins the error diagnostics of the dense memory
// slots: loading through a freed alloc pointer must fail the simulation.
func TestFuncUseAfterFree(t *testing.T) {
	src := `
entity @top () -> () {
  inst @p () -> ()
}
proc @p () -> () {
 entry:
  %x = call i32 @bad ()
  halt
}
func @bad () i32 {
 entry:
  %p = alloc i32
  free i32* %p
  %v = ld i32* %p
  ret i32 %v
}
`
	m := assembly.MustParse("m", src)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Run(ir.Time{}); err == nil {
		t.Error("Run succeeded; want use-after-free error")
	}
}

// freeRunnerSrc is a never-halting clock generator plus edge counter: every
// step exercises the interpreter's probes, drives, var/ld/st memory,
// branches, phis-free jumps, and wait re-arming, forever.
const freeRunnerSrc = `
entity @top () -> () {
  %z1 = const i1 0
  %z32 = const i32 0
  %clk = sig i1 %z1
  %count = sig i32 %z32
  inst @clkgen () -> (i1$ %clk)
  inst @counter (i1$ %clk) -> (i32$ %count)
}
proc @clkgen () -> (i1$ %clk) {
 entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %half = const time 5ns
  %zero = const i32 0
  %one = const i32 1
  %i = var i32 %zero
  br %loop
 loop:
  drv i1$ %clk, %b1 after %half
  wait %lo for %half
 lo:
  drv i1$ %clk, %b0 after %half
  wait %next for %half
 next:
  %ip = ld i32* %i
  %in = add i32 %ip, %one
  st i32* %i, %in
  br %loop
}
proc @counter (i1$ %clk) -> (i32$ %count) {
 init:
  %one = const i32 1
  %dz = const time 0s
  %clk0 = prb i1$ %clk
  wait %check for %clk
 check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %pos = and i1 %chg, %clk1
  br %pos, %init, %bump
 bump:
  %c = prb i32$ %count
  %cn = add i32 %c, %one
  drv i32$ %count, %cn after %dz
  br %init
}
`

// TestInterpWakeHotPathAllocFree is the interpreter sibling of the
// kernel's TestDriveWakeHotPathAllocFree: once frames, wait sets and the
// slot pool are warm, a full engine step through an interpreted design
// (probes, drives, var/ld/st, branches, waits) must not allocate. This is
// also the enforcement hook for the slot-frame rework: a map[ir.Value]
// environment on any per-wake path reappears here as per-step
// map-assignment allocations.
func TestInterpWakeHotPathAllocFree(t *testing.T) {
	m := assembly.MustParse("freerun", freeRunnerSrc)
	s, err := New(m, "top")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e := s.Engine
	e.Init()
	for i := 0; i < 256; i++ { // warm frames, wait sets, and the slot pool
		if !e.Step() {
			t.Fatal("free-running design drained unexpectedly")
		}
	}
	if err := e.Err(); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	avg := testing.AllocsPerRun(500, func() {
		e.Step()
	})
	if e.PendingEvents() == 0 {
		t.Fatal("queue drained during measurement; hot path not exercised")
	}
	t.Logf("interpreter wake path: %.3f allocs/step", avg)
	// The path measures 0.000 today; the small nonzero gate only tolerates
	// rare kernel-map rehash noise, never a systematic per-step allocation.
	if avg > 0.25 {
		t.Errorf("interpreter wake hot path allocates %.2f times per step, want 0", avg)
	}
}
