// Package sim implements the LLHD reference simulator (the paper's
// LLHD-Sim, §6.1): a deliberately simple tree-walking interpreter over the
// IR, running on the shared discrete-event kernel in internal/engine. It
// favours clarity over speed; internal/blaze is the fast counterpart.
package sim

import (
	"fmt"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// Simulator couples an elaborated design with the event engine.
type Simulator struct {
	Engine *engine.Engine
	Module *ir.Module
	Top    string
}

// New elaborates the design hierarchy under the named top unit with the
// interpreting process factory.
func New(m *ir.Module, top string) (*Simulator, error) {
	e := engine.New()
	s := &Simulator{Engine: e, Module: m, Top: top}
	factory := func(inst *engine.Instance) (engine.Process, error) {
		switch inst.Unit.Kind {
		case ir.UnitProc:
			return newProcInterp(s, inst), nil
		case ir.UnitEntity:
			return newEntityInterp(s, inst), nil
		}
		return nil, fmt.Errorf("sim: cannot interpret %s @%s", inst.Unit.Kind, inst.Unit.Name)
	}
	if err := engine.Elaborate(e, m, top, factory); err != nil {
		return nil, err
	}
	return s, nil
}

// Run initializes the design and simulates until the event queue drains or
// physical time exceeds limit (zero limit: unbounded). It returns the
// first runtime error, if any.
func (s *Simulator) Run(limit ir.Time) error {
	s.Engine.Init()
	s.Engine.Run(limit)
	return s.Engine.Err()
}

// slot is one memory cell created by var or alloc.
type slot struct {
	v     val.Value
	freed bool
}

// procInterp interprets one process instance.
type procInterp struct {
	engine.ProcHandle
	sim  *Simulator
	inst *engine.Instance

	env    map[ir.Value]val.Value
	sigs   map[ir.Value]engine.SigRef
	mem    map[*ir.Inst]*slot
	block  *ir.Block // current block
	index  int       // next instruction index in block
	prev   *ir.Block // predecessor, for phi resolution
	halted bool
}

func newProcInterp(s *Simulator, inst *engine.Instance) *procInterp {
	p := &procInterp{
		sim:  s,
		inst: inst,
		env:  map[ir.Value]val.Value{},
		sigs: map[ir.Value]engine.SigRef{},
		mem:  map[*ir.Inst]*slot{},
	}
	for v, r := range inst.Bind {
		p.sigs[v] = r
	}
	return p
}

func (p *procInterp) Name() string { return p.inst.Name }

func (p *procInterp) Init(e *engine.Engine) {
	p.block = p.inst.Unit.Entry()
	p.index = 0
	p.run(e)
}

func (p *procInterp) Wake(e *engine.Engine) {
	if p.halted {
		return
	}
	p.run(e)
}

// run executes instructions until the process suspends (wait/halt) or the
// engine records an error.
func (p *procInterp) run(e *engine.Engine) {
	const maxSteps = 100_000_000 // guards against runaway zero-time loops
	for steps := 0; steps < maxSteps; steps++ {
		if p.block == nil || p.index >= len(p.block.Insts) {
			e.Halt(p.ProcID())
			p.halted = true
			return
		}
		in := p.block.Insts[p.index]
		p.index++
		done, err := p.exec(e, in)
		if err != nil {
			e.SetError(fmt.Errorf("sim: %s: %w", p.inst.Name, err))
			return
		}
		if done {
			return
		}
	}
	e.SetError(fmt.Errorf("sim: %s: step budget exhausted (livelock?)", p.inst.Name))
}

// value resolves an operand to its runtime value.
func (p *procInterp) value(v ir.Value) (val.Value, error) {
	if rv, ok := p.env[v]; ok {
		return rv, nil
	}
	return val.Value{}, fmt.Errorf("value %s not computed", v)
}

// sigRef resolves an operand to a signal reference.
func (p *procInterp) sigRef(v ir.Value) (engine.SigRef, error) {
	if r, ok := p.sigs[v]; ok {
		return r, nil
	}
	return engine.SigRef{}, fmt.Errorf("%s is not a signal reference", v)
}

// jump transfers control to dest, resolving its phi nodes against the
// current block.
func (p *procInterp) jump(dest *ir.Block) error {
	p.prev = p.block
	p.block = dest
	p.index = 0
	// Evaluate all phis of dest simultaneously against the edge taken.
	var pending []struct {
		in *ir.Inst
		v  val.Value
	}
	for _, in := range dest.Insts {
		if in.Op != ir.OpPhi {
			break
		}
		found := false
		for i, bb := range in.Dests {
			if bb == p.prev {
				v, err := p.value(in.Args[i])
				if err != nil {
					return err
				}
				pending = append(pending, struct {
					in *ir.Inst
					v  val.Value
				}{in, v})
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("phi in %s has no incoming edge from %s", dest, p.prev)
		}
	}
	for _, pe := range pending {
		p.env[pe.in] = pe.v
	}
	return nil
}

// exec runs one instruction; it reports done=true when the process
// suspended and control must return to the engine.
func (p *procInterp) exec(e *engine.Engine, in *ir.Inst) (bool, error) {
	switch in.Op {
	case ir.OpPhi:
		// Already resolved by jump.
		return false, nil

	case ir.OpExtF:
		if r, ok := p.sigs[in.Args[0]]; ok && len(in.Args) == 1 {
			p.sigs[in] = r.Extend(engine.Proj{Kind: engine.ProjField, A: in.Imm0})
			return false, nil
		}
		if in.Args[0].Type().IsPointer() {
			return false, fmt.Errorf("extf on pointers is not supported by the interpreter yet")
		}
		// Plain-value extraction (including dynamic index) falls through
		// to the pure evaluator below.

	case ir.OpExtS:
		if r, ok := p.sigs[in.Args[0]]; ok {
			p.sigs[in] = r.Extend(engine.Proj{Kind: engine.ProjSlice, A: in.Imm0, B: in.Imm1})
			return false, nil
		}

	case ir.OpPrb:
		r, err := p.sigRef(in.Args[0])
		if err != nil {
			return false, err
		}
		p.env[in] = e.Probe(r)
		return false, nil

	case ir.OpDrv:
		r, err := p.sigRef(in.Args[0])
		if err != nil {
			return false, err
		}
		v, err := p.value(in.Args[1])
		if err != nil {
			return false, err
		}
		d, err := p.value(in.Args[2])
		if err != nil {
			return false, err
		}
		if len(in.Args) == 4 {
			cond, err := p.value(in.Args[3])
			if err != nil {
				return false, err
			}
			if !cond.IsTrue() {
				return false, nil
			}
		}
		e.Drive(r, v, d.T)
		return false, nil

	case ir.OpVar, ir.OpAlloc:
		var init val.Value
		if in.Op == ir.OpVar {
			v, err := p.value(in.Args[0])
			if err != nil {
				return false, err
			}
			init = v.Clone()
		} else {
			init = val.Default(in.Ty.Elem)
		}
		// Re-executing a var (loop) rebinds the same slot with the init
		// value, matching stack-slot semantics.
		if s, ok := p.mem[in]; ok {
			s.v = init
			s.freed = false
		} else {
			p.mem[in] = &slot{v: init}
		}
		return false, nil

	case ir.OpLd:
		s, err := p.slotOf(in.Args[0])
		if err != nil {
			return false, err
		}
		p.env[in] = s.v.Clone()
		return false, nil

	case ir.OpSt:
		s, err := p.slotOf(in.Args[0])
		if err != nil {
			return false, err
		}
		v, err := p.value(in.Args[1])
		if err != nil {
			return false, err
		}
		s.v = v.Clone()
		return false, nil

	case ir.OpFree:
		s, err := p.slotOf(in.Args[0])
		if err != nil {
			return false, err
		}
		s.freed = true
		return false, nil

	case ir.OpCall:
		rv, err := interpretCall(p.sim, e, in, func(v ir.Value) (val.Value, error) { return p.value(v) })
		if err != nil {
			return false, err
		}
		if !in.Ty.IsVoid() {
			p.env[in] = rv
		}
		return false, nil

	case ir.OpBr:
		if len(in.Args) == 1 {
			c, err := p.value(in.Args[0])
			if err != nil {
				return false, err
			}
			if c.IsTrue() {
				return false, p.jump(in.Dests[1])
			}
			return false, p.jump(in.Dests[0])
		}
		return false, p.jump(in.Dests[0])

	case ir.OpWait:
		var refs []engine.SigRef
		for _, a := range in.Args {
			r, err := p.sigRef(a)
			if err != nil {
				return false, err
			}
			refs = append(refs, r)
		}
		e.Subscribe(p.ProcID(), refs)
		if in.TimeArg != nil {
			t, err := p.value(in.TimeArg)
			if err != nil {
				return false, err
			}
			e.ScheduleWake(p.ProcID(), t.T)
		}
		if err := p.jump(in.Dests[0]); err != nil {
			return false, err
		}
		return true, nil

	case ir.OpHalt:
		e.Halt(p.ProcID())
		p.halted = true
		return true, nil

	case ir.OpUnreachable:
		return false, fmt.Errorf("reached unreachable")

	case ir.OpRet:
		return false, fmt.Errorf("ret in a process")
	}

	// Pure data flow.
	v, err := engine.EvalPure(in, func(x ir.Value) (val.Value, bool) {
		rv, ok := p.env[x]
		return rv, ok
	})
	if err != nil {
		return false, err
	}
	p.env[in] = v
	return false, nil
}

func (p *procInterp) slotOf(ptr ir.Value) (*slot, error) {
	in, ok := ptr.(*ir.Inst)
	if !ok {
		return nil, fmt.Errorf("pointer %s is not var/alloc result", ptr)
	}
	s, ok := p.mem[in]
	if !ok {
		return nil, fmt.Errorf("pointer %s not materialized", ptr)
	}
	if s.freed {
		return nil, fmt.Errorf("use after free through %s", ptr)
	}
	return s, nil
}
