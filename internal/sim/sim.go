// Package sim implements the LLHD reference simulator (the paper's
// LLHD-Sim, §6.1): a deliberately simple tree-walking interpreter over the
// IR, running on the shared discrete-event kernel in internal/engine. It
// favours clarity over speed; internal/blaze is the fast counterpart.
//
// Since the slot-indexed frame rework the interpreter no longer keys its
// environments by IR node: every value access indexes a flat frame by the
// unit's ir.Numbering (see frame.go), the same value-ID scheme the blaze
// compiler assigns register slots with. Frames, wait sets and call-argument
// buffers are pooled, so the per-wake hot path is allocation-free in steady
// state (pinned by TestInterpWakeHotPathAllocFree).
package sim

import (
	"fmt"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// Simulator couples an elaborated design with the event engine.
type Simulator struct {
	Engine *engine.Engine
	Module *ir.Module
	Top    string

	// fstates caches per-function numberings and pooled frames; argPool
	// recycles call-argument buffers. Both keep the call path off the
	// allocator at steady state.
	fstates map[*ir.Unit]*funcState
	argPool [][]val.Value
}

// New elaborates the design hierarchy under the named top unit with the
// interpreting process factory.
func New(m *ir.Module, top string) (*Simulator, error) {
	e := engine.New()
	s := &Simulator{Engine: e, Module: m, Top: top, fstates: map[*ir.Unit]*funcState{}}
	factory := func(inst *engine.Instance) (engine.Process, error) {
		switch inst.Unit.Kind {
		case ir.UnitProc:
			return newProcInterp(s, inst), nil
		case ir.UnitEntity:
			return newEntityInterp(s, inst), nil
		}
		return nil, fmt.Errorf("sim: cannot interpret %s @%s", inst.Unit.Kind, inst.Unit.Name)
	}
	if err := engine.Elaborate(e, m, top, factory); err != nil {
		return nil, err
	}
	return s, nil
}

// Run initializes the design and simulates until the event queue drains or
// physical time exceeds limit (zero limit: unbounded). It returns the
// first runtime error, if any.
func (s *Simulator) Run(limit ir.Time) error {
	s.Engine.Init()
	s.Engine.Run(limit)
	return s.Engine.Err()
}

// procInterp interprets one process instance. Its frame persists across
// wakes (a process resumes mid-execution, so values computed before a wait
// stay live) and is never reset.
type procInterp struct {
	engine.ProcHandle
	sim  *Simulator
	inst *engine.Instance

	frame *frame
	sigTable
	waitRefs []engine.SigRef // reusable wait sensitivity scratch

	block  *ir.Block // current block
	index  int       // next instruction index in block
	prev   *ir.Block // predecessor, for phi resolution
	halted bool
}

func newProcInterp(s *Simulator, inst *engine.Instance) *procInterp {
	n := inst.Numbering().Len()
	p := &procInterp{
		sim:   s,
		inst:  inst,
		frame: newFrame(n),
	}
	// Copy the elaborated signal bindings; runtime extf/exts projections
	// extend the process-local table.
	p.seedSigs(inst, n)
	return p
}

func (p *procInterp) Name() string { return p.inst.Name }

func (p *procInterp) Init(e *engine.Engine) {
	p.block = p.inst.Unit.Entry()
	p.index = 0
	p.run(e)
}

func (p *procInterp) Wake(e *engine.Engine) {
	if p.halted {
		return
	}
	p.run(e)
}

// run executes instructions until the process suspends (wait/halt) or the
// engine records an error.
func (p *procInterp) run(e *engine.Engine) {
	const maxSteps = 100_000_000 // guards against runaway zero-time loops
	for steps := 0; steps < maxSteps; steps++ {
		if p.block == nil || p.index >= len(p.block.Insts) {
			e.Halt(p.ProcID())
			p.halted = true
			return
		}
		in := p.block.Insts[p.index]
		p.index++
		done, err := p.exec(e, in)
		if err != nil {
			e.SetError(fmt.Errorf("sim: %s: %w", p.inst.Name, err))
			return
		}
		if done {
			return
		}
	}
	e.SetError(fmt.Errorf("sim: %s: step budget exhausted (livelock?): %w", p.inst.Name, engine.ErrStepLimit))
}

// value resolves an operand to its runtime value.
func (p *procInterp) value(v ir.Value) (val.Value, error) {
	if id := ir.ValueID(v); id >= 0 {
		if rv, ok := p.frame.get(id); ok {
			return rv, nil
		}
	}
	return val.Value{}, fmt.Errorf("value %s not computed", v)
}

// sigRef resolves an operand to a signal reference or errors.
func (p *procInterp) sigRef(v ir.Value) (engine.SigRef, error) {
	if r, ok := p.sigOf(v); ok {
		return r, nil
	}
	return engine.SigRef{}, fmt.Errorf("%s is not a signal reference", v)
}

// jump transfers control to dest, resolving its phi nodes against the
// current block. The phi scratch on the frame is reused across jumps.
func (p *procInterp) jump(dest *ir.Block) error {
	p.prev = p.block
	p.block = dest
	p.index = 0
	// Evaluate all phis of dest simultaneously against the edge taken.
	vals := p.frame.phiVals[:0]
	ids := p.frame.phiIDs[:0]
	defer func() { p.frame.phiVals, p.frame.phiIDs = vals, ids }()
	for _, in := range dest.Insts {
		if in.Op != ir.OpPhi {
			break
		}
		found := false
		for i, bb := range in.Dests {
			if bb == p.prev {
				v, err := p.value(in.Args[i])
				if err != nil {
					return err
				}
				vals = append(vals, v)
				ids = append(ids, ir.ValueID(in))
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("phi in %s has no incoming edge from %s", dest, p.prev)
		}
	}
	for i, id := range ids {
		p.frame.set(id, vals[i])
	}
	return nil
}

// exec runs one instruction; it reports done=true when the process
// suspended and control must return to the engine.
func (p *procInterp) exec(e *engine.Engine, in *ir.Inst) (bool, error) {
	switch in.Op {
	case ir.OpPhi:
		// Already resolved by jump.
		return false, nil

	case ir.OpExtF:
		if r, ok := p.sigOf(in.Args[0]); ok && len(in.Args) == 1 {
			p.setSig(in, r.Extend(engine.Proj{Kind: engine.ProjField, A: in.Imm0}))
			return false, nil
		}
		if in.Args[0].Type().IsPointer() {
			return false, fmt.Errorf("extf on pointers is not supported by the interpreter yet")
		}
		// Plain-value extraction (including dynamic index) falls through
		// to the pure evaluator below.

	case ir.OpExtS:
		if r, ok := p.sigOf(in.Args[0]); ok {
			p.setSig(in, r.Extend(engine.Proj{Kind: engine.ProjSlice, A: in.Imm0, B: in.Imm1}))
			return false, nil
		}

	case ir.OpPrb:
		r, err := p.sigRef(in.Args[0])
		if err != nil {
			return false, err
		}
		p.frame.set(ir.ValueID(in), e.Probe(r))
		return false, nil

	case ir.OpDrv:
		r, err := p.sigRef(in.Args[0])
		if err != nil {
			return false, err
		}
		v, err := p.value(in.Args[1])
		if err != nil {
			return false, err
		}
		d, err := p.value(in.Args[2])
		if err != nil {
			return false, err
		}
		if len(in.Args) == 4 {
			cond, err := p.value(in.Args[3])
			if err != nil {
				return false, err
			}
			if !cond.IsTrue() {
				return false, nil
			}
		}
		e.Drive(r, v, d.T)
		return false, nil

	case ir.OpVar, ir.OpAlloc:
		var init val.Value
		if in.Op == ir.OpVar {
			v, err := p.value(in.Args[0])
			if err != nil {
				return false, err
			}
			init = v.Clone()
		} else {
			init = val.Default(in.Ty.Elem)
		}
		// Re-executing a var (loop) rebinds the same slot with the init
		// value, matching stack-slot semantics.
		p.frame.defineMem(ir.ValueID(in), init)
		return false, nil

	case ir.OpLd:
		s, err := p.frame.memOf(in.Args[0])
		if err != nil {
			return false, err
		}
		p.frame.set(ir.ValueID(in), s.v.Clone())
		return false, nil

	case ir.OpSt:
		s, err := p.frame.memOf(in.Args[0])
		if err != nil {
			return false, err
		}
		v, err := p.value(in.Args[1])
		if err != nil {
			return false, err
		}
		s.v = v.Clone()
		return false, nil

	case ir.OpFree:
		s, err := p.frame.memOf(in.Args[0])
		if err != nil {
			return false, err
		}
		s.freed = true
		return false, nil

	case ir.OpCall:
		rv, err := interpretCall(p.sim, e, in, p.value)
		if err != nil {
			return false, err
		}
		if !in.Ty.IsVoid() {
			p.frame.set(ir.ValueID(in), rv)
		}
		return false, nil

	case ir.OpBr:
		if len(in.Args) == 1 {
			c, ok := p.frame.boolAt(in.Args[0])
			if !ok {
				cv, err := p.value(in.Args[0])
				if err != nil {
					return false, err
				}
				c = cv.IsTrue()
			}
			if c {
				return false, p.jump(in.Dests[1])
			}
			return false, p.jump(in.Dests[0])
		}
		return false, p.jump(in.Dests[0])

	case ir.OpWait:
		refs := p.waitRefs[:0]
		for _, a := range in.Args {
			r, err := p.sigRef(a)
			if err != nil {
				p.waitRefs = refs
				return false, err
			}
			refs = append(refs, r)
		}
		p.waitRefs = refs
		e.Subscribe(p.ProcID(), refs)
		if in.TimeArg != nil {
			t, err := p.value(in.TimeArg)
			if err != nil {
				return false, err
			}
			e.ScheduleWake(p.ProcID(), t.T)
		}
		if err := p.jump(in.Dests[0]); err != nil {
			return false, err
		}
		return true, nil

	case ir.OpHalt:
		e.Halt(p.ProcID())
		p.halted = true
		return true, nil

	case ir.OpUnreachable:
		return false, fmt.Errorf("reached unreachable")

	case ir.OpRet:
		return false, fmt.Errorf("ret in a process")
	}

	// Pure data flow: scalar-integer ops run in place on the frame; logic
	// vectors, aggregates and times take the generic evaluator.
	if p.frame.evalFast(in) {
		return false, nil
	}
	v, err := engine.EvalPure(in, p.frame.lookup)
	if err != nil {
		return false, err
	}
	p.frame.set(ir.ValueID(in), v)
	return false, nil
}
