package sim

import (
	"fmt"
	"strings"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// funcState is the per-function interpreter cache: the unit's value
// numbering plus a pool of frames reused across calls, so steady-state
// call chains (including recursion, which simply pops deeper frames)
// allocate nothing.
type funcState struct {
	num  *ir.Numbering
	free []*frame
}

// funcState returns (creating on first use) the cached state for fn.
func (s *Simulator) funcState(fn *ir.Unit) *funcState {
	if st, ok := s.fstates[fn]; ok {
		return st
	}
	st := &funcState{num: fn.Numbering()}
	s.fstates[fn] = st
	return st
}

// acquire returns a reset frame sized for the function.
func (st *funcState) acquire() *frame {
	if n := len(st.free); n > 0 {
		f := st.free[n-1]
		st.free = st.free[:n-1]
		f.reset()
		return f
	}
	return newFrame(st.num.Len())
}

// release returns the frame to the pool.
func (st *funcState) release(f *frame) { st.free = append(st.free, f) }

// acquireArgs pops a call-argument buffer of length n from the pool.
func (s *Simulator) acquireArgs(n int) []val.Value {
	if k := len(s.argPool); k > 0 {
		buf := s.argPool[k-1]
		s.argPool = s.argPool[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]val.Value, n)
}

// releaseArgs returns a buffer to the pool.
func (s *Simulator) releaseArgs(buf []val.Value) {
	s.argPool = append(s.argPool, buf[:0])
}

// interpretCall dispatches a call instruction: llhd.* intrinsics are
// handled by the engine hooks, other callees are interpreted as functions.
func interpretCall(s *Simulator, e *engine.Engine, in *ir.Inst,
	arg func(ir.Value) (val.Value, error)) (val.Value, error) {

	args := s.acquireArgs(len(in.Args))
	defer s.releaseArgs(args)
	for i, a := range in.Args {
		v, err := arg(a)
		if err != nil {
			return val.Value{}, err
		}
		args[i] = v
	}
	if strings.HasPrefix(in.Callee, "llhd.") {
		return intrinsic(e, in.Callee, args)
	}
	fn := s.Module.Unit(in.Callee)
	if fn == nil {
		return val.Value{}, fmt.Errorf("call to undefined @%s", in.Callee)
	}
	if fn.Kind != ir.UnitFunc {
		return val.Value{}, fmt.Errorf("call target @%s is a %s", in.Callee, fn.Kind)
	}
	return interpretFunc(s, e, fn, args, 0)
}

// intrinsic implements the llhd.* intrinsics (§2.5.9).
func intrinsic(e *engine.Engine, name string, args []val.Value) (val.Value, error) {
	switch name {
	case "llhd.assert":
		if len(args) != 1 {
			return val.Value{}, fmt.Errorf("llhd.assert needs one i1 argument")
		}
		if !args[0].IsTrue() {
			e.OnAssert(name, e.Now)
		}
		return val.Value{}, nil
	case "llhd.display":
		if e.Display != nil {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.String()
			}
			e.Display(strings.Join(parts, " "))
		}
		return val.Value{}, nil
	case "llhd.time":
		return val.TimeVal(e.Now), nil
	}
	return val.Value{}, fmt.Errorf("unknown intrinsic @%s", name)
}

const maxCallDepth = 1000

// interpretFunc runs a function unit to completion (functions execute
// immediately, §2.4.1) and returns its return value. The frame — values,
// stack memory, and phi scratch — comes from the per-function pool and is
// invalidated for reuse by a single stamp bump.
func interpretFunc(s *Simulator, e *engine.Engine, fn *ir.Unit, args []val.Value, depth int) (val.Value, error) {
	if depth > maxCallDepth {
		return val.Value{}, fmt.Errorf("call depth exceeded in @%s", fn.Name)
	}
	if len(args) != len(fn.Inputs) {
		return val.Value{}, fmt.Errorf("@%s called with %d args, want %d", fn.Name, len(args), len(fn.Inputs))
	}
	st := s.funcState(fn)
	f := st.acquire()
	defer st.release(f)
	for i, a := range fn.Inputs {
		f.set(ir.ValueID(a), args[i])
	}

	get := func(v ir.Value) (val.Value, bool) {
		if id := ir.ValueID(v); id >= 0 {
			return f.get(id)
		}
		return val.Value{}, false
	}

	block := fn.Entry()
	var prev *ir.Block
	index := 0
	const maxSteps = 100_000_000
	for steps := 0; steps < maxSteps; steps++ {
		if block == nil || index >= len(block.Insts) {
			return val.Value{}, fmt.Errorf("@%s: fell off the end of %s", fn.Name, block)
		}
		in := block.Insts[index]
		index++

		switch in.Op {
		case ir.OpRet:
			if len(in.Args) == 1 {
				v, ok := get(in.Args[0])
				if !ok {
					return val.Value{}, fmt.Errorf("@%s: return value not computed", fn.Name)
				}
				return v, nil
			}
			return val.Value{}, nil

		case ir.OpBr:
			var dest *ir.Block
			if len(in.Args) == 1 {
				c, ok := f.boolAt(in.Args[0])
				if !ok {
					cv, ok := get(in.Args[0])
					if !ok {
						return val.Value{}, fmt.Errorf("@%s: branch condition not computed", fn.Name)
					}
					c = cv.IsTrue()
				}
				if c {
					dest = in.Dests[1]
				} else {
					dest = in.Dests[0]
				}
			} else {
				dest = in.Dests[0]
			}
			prev = block
			block = dest
			index = 0
			// Resolve phis simultaneously via the frame's reusable scratch.
			vals := f.phiVals[:0]
			ids := f.phiIDs[:0]
			for _, pin := range dest.Insts {
				if pin.Op != ir.OpPhi {
					break
				}
				found := false
				for i, bb := range pin.Dests {
					if bb == prev {
						v, ok := get(pin.Args[i])
						if !ok {
							f.phiVals, f.phiIDs = vals, ids
							return val.Value{}, fmt.Errorf("@%s: phi operand not computed", fn.Name)
						}
						vals = append(vals, v)
						ids = append(ids, ir.ValueID(pin))
						found = true
						break
					}
				}
				if !found {
					f.phiVals, f.phiIDs = vals, ids
					return val.Value{}, fmt.Errorf("@%s: phi without edge from %s", fn.Name, prev)
				}
			}
			for i, id := range ids {
				f.set(id, vals[i])
			}
			f.phiVals, f.phiIDs = vals, ids

		case ir.OpPhi:
			// handled at branch time

		case ir.OpVar, ir.OpAlloc:
			var init val.Value
			if in.Op == ir.OpVar {
				v, ok := get(in.Args[0])
				if !ok {
					return val.Value{}, fmt.Errorf("@%s: var initializer not computed", fn.Name)
				}
				init = v.Clone()
			} else {
				init = val.Default(in.Ty.Elem)
			}
			f.defineMem(ir.ValueID(in), init)

		case ir.OpLd:
			sl, err := f.memOf(in.Args[0])
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			f.set(ir.ValueID(in), sl.v.Clone())

		case ir.OpSt:
			sl, err := f.memOf(in.Args[0])
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			v, ok := get(in.Args[1])
			if !ok {
				return val.Value{}, fmt.Errorf("@%s: store value not computed", fn.Name)
			}
			sl.v = v.Clone()

		case ir.OpFree:
			sl, err := f.memOf(in.Args[0])
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			sl.freed = true

		case ir.OpCall:
			cargs := s.acquireArgs(len(in.Args))
			argsOK := true
			for i, a := range in.Args {
				v, ok := get(a)
				if !ok {
					argsOK = false
					break
				}
				cargs[i] = v
			}
			if !argsOK {
				s.releaseArgs(cargs)
				return val.Value{}, fmt.Errorf("@%s: call argument not computed", fn.Name)
			}
			var rv val.Value
			var err error
			if strings.HasPrefix(in.Callee, "llhd.") {
				rv, err = intrinsic(e, in.Callee, cargs)
			} else {
				callee := s.Module.Unit(in.Callee)
				if callee == nil {
					s.releaseArgs(cargs)
					return val.Value{}, fmt.Errorf("@%s: call to undefined @%s", fn.Name, in.Callee)
				}
				rv, err = interpretFunc(s, e, callee, cargs, depth+1)
			}
			s.releaseArgs(cargs)
			if err != nil {
				return val.Value{}, err
			}
			if !in.Ty.IsVoid() {
				f.set(ir.ValueID(in), rv)
			}

		case ir.OpUnreachable:
			return val.Value{}, fmt.Errorf("@%s: reached unreachable", fn.Name)

		default:
			// Scalar-integer ops run in place on the frame.
			if f.evalFast(in) {
				break
			}
			v, err := engine.EvalPure(in, f.lookup)
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			f.set(ir.ValueID(in), v)
		}
	}
	return val.Value{}, fmt.Errorf("@%s: step budget exhausted", fn.Name)
}
