package sim

import (
	"fmt"
	"strings"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// interpretCall dispatches a call instruction: llhd.* intrinsics are
// handled by the engine hooks, other callees are interpreted as functions.
func interpretCall(s *Simulator, e *engine.Engine, in *ir.Inst,
	arg func(ir.Value) (val.Value, error)) (val.Value, error) {

	args := make([]val.Value, len(in.Args))
	for i, a := range in.Args {
		v, err := arg(a)
		if err != nil {
			return val.Value{}, err
		}
		args[i] = v
	}
	if strings.HasPrefix(in.Callee, "llhd.") {
		return intrinsic(e, in.Callee, args)
	}
	fn := s.Module.Unit(in.Callee)
	if fn == nil {
		return val.Value{}, fmt.Errorf("call to undefined @%s", in.Callee)
	}
	if fn.Kind != ir.UnitFunc {
		return val.Value{}, fmt.Errorf("call target @%s is a %s", in.Callee, fn.Kind)
	}
	return interpretFunc(s, e, fn, args, 0)
}

// intrinsic implements the llhd.* intrinsics (§2.5.9).
func intrinsic(e *engine.Engine, name string, args []val.Value) (val.Value, error) {
	switch name {
	case "llhd.assert":
		if len(args) != 1 {
			return val.Value{}, fmt.Errorf("llhd.assert needs one i1 argument")
		}
		if !args[0].IsTrue() {
			e.OnAssert(name, e.Now)
		}
		return val.Value{}, nil
	case "llhd.display":
		if e.Display != nil {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = a.String()
			}
			e.Display(strings.Join(parts, " "))
		}
		return val.Value{}, nil
	case "llhd.time":
		return val.TimeVal(e.Now), nil
	}
	return val.Value{}, fmt.Errorf("unknown intrinsic @%s", name)
}

const maxCallDepth = 1000

// interpretFunc runs a function unit to completion (functions execute
// immediately, §2.4.1) and returns its return value.
func interpretFunc(s *Simulator, e *engine.Engine, fn *ir.Unit, args []val.Value, depth int) (val.Value, error) {
	if depth > maxCallDepth {
		return val.Value{}, fmt.Errorf("call depth exceeded in @%s", fn.Name)
	}
	if len(args) != len(fn.Inputs) {
		return val.Value{}, fmt.Errorf("@%s called with %d args, want %d", fn.Name, len(args), len(fn.Inputs))
	}
	env := map[ir.Value]val.Value{}
	for i, a := range fn.Inputs {
		env[a] = args[i]
	}
	mem := map[*ir.Inst]*slot{}

	block := fn.Entry()
	var prev *ir.Block
	index := 0
	const maxSteps = 100_000_000
	for steps := 0; steps < maxSteps; steps++ {
		if block == nil || index >= len(block.Insts) {
			return val.Value{}, fmt.Errorf("@%s: fell off the end of %s", fn.Name, block)
		}
		in := block.Insts[index]
		index++

		switch in.Op {
		case ir.OpRet:
			if len(in.Args) == 1 {
				v, ok := env[in.Args[0]]
				if !ok {
					return val.Value{}, fmt.Errorf("@%s: return value not computed", fn.Name)
				}
				return v, nil
			}
			return val.Value{}, nil

		case ir.OpBr:
			var dest *ir.Block
			if len(in.Args) == 1 {
				c, ok := env[in.Args[0]]
				if !ok {
					return val.Value{}, fmt.Errorf("@%s: branch condition not computed", fn.Name)
				}
				if c.IsTrue() {
					dest = in.Dests[1]
				} else {
					dest = in.Dests[0]
				}
			} else {
				dest = in.Dests[0]
			}
			prev = block
			block = dest
			index = 0
			// Resolve phis simultaneously.
			var pending []struct {
				in *ir.Inst
				v  val.Value
			}
			for _, pin := range dest.Insts {
				if pin.Op != ir.OpPhi {
					break
				}
				found := false
				for i, bb := range pin.Dests {
					if bb == prev {
						v, ok := env[pin.Args[i]]
						if !ok {
							return val.Value{}, fmt.Errorf("@%s: phi operand not computed", fn.Name)
						}
						pending = append(pending, struct {
							in *ir.Inst
							v  val.Value
						}{pin, v})
						found = true
						break
					}
				}
				if !found {
					return val.Value{}, fmt.Errorf("@%s: phi without edge from %s", fn.Name, prev)
				}
			}
			for _, pe := range pending {
				env[pe.in] = pe.v
			}

		case ir.OpPhi:
			// handled at branch time

		case ir.OpVar, ir.OpAlloc:
			var init val.Value
			if in.Op == ir.OpVar {
				v, ok := env[in.Args[0]]
				if !ok {
					return val.Value{}, fmt.Errorf("@%s: var initializer not computed", fn.Name)
				}
				init = v.Clone()
			} else {
				init = val.Default(in.Ty.Elem)
			}
			if s, ok := mem[in]; ok {
				s.v = init
				s.freed = false
			} else {
				mem[in] = &slot{v: init}
			}

		case ir.OpLd:
			sl, err := funcSlot(mem, in.Args[0])
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			env[in] = sl.v.Clone()

		case ir.OpSt:
			sl, err := funcSlot(mem, in.Args[0])
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			v, ok := env[in.Args[1]]
			if !ok {
				return val.Value{}, fmt.Errorf("@%s: store value not computed", fn.Name)
			}
			sl.v = v.Clone()

		case ir.OpFree:
			sl, err := funcSlot(mem, in.Args[0])
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			sl.freed = true

		case ir.OpCall:
			cargs := make([]val.Value, len(in.Args))
			for i, a := range in.Args {
				v, ok := env[a]
				if !ok {
					return val.Value{}, fmt.Errorf("@%s: call argument not computed", fn.Name)
				}
				cargs[i] = v
			}
			var rv val.Value
			var err error
			if strings.HasPrefix(in.Callee, "llhd.") {
				rv, err = intrinsic(e, in.Callee, cargs)
			} else {
				callee := s.Module.Unit(in.Callee)
				if callee == nil {
					return val.Value{}, fmt.Errorf("@%s: call to undefined @%s", fn.Name, in.Callee)
				}
				rv, err = interpretFunc(s, e, callee, cargs, depth+1)
			}
			if err != nil {
				return val.Value{}, err
			}
			if !in.Ty.IsVoid() {
				env[in] = rv
			}

		case ir.OpUnreachable:
			return val.Value{}, fmt.Errorf("@%s: reached unreachable", fn.Name)

		default:
			v, err := engine.EvalPure(in, func(x ir.Value) (val.Value, bool) {
				rv, ok := env[x]
				return rv, ok
			})
			if err != nil {
				return val.Value{}, fmt.Errorf("@%s: %w", fn.Name, err)
			}
			env[in] = v
		}
	}
	return val.Value{}, fmt.Errorf("@%s: step budget exhausted", fn.Name)
}

func funcSlot(mem map[*ir.Inst]*slot, ptr ir.Value) (*slot, error) {
	in, ok := ptr.(*ir.Inst)
	if !ok {
		return nil, fmt.Errorf("pointer %s is not var/alloc result", ptr)
	}
	s, ok := mem[in]
	if !ok {
		return nil, fmt.Errorf("pointer %s not materialized", ptr)
	}
	if s.freed {
		return nil, fmt.Errorf("use after free through %s", ptr)
	}
	return s, nil
}
