package sim

import (
	"fmt"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// entityInterp interprets the reactive body of an entity instance: the
// instructions that the elaborator could not fold into constants (prb,
// drv, reg, del, and data flow downstream of probes). Per §2.4.3 the body
// executes once at initialization and again whenever an input changes.
type entityInterp struct {
	engine.ProcHandle
	sim  *Simulator
	inst *engine.Instance

	env  map[ir.Value]val.Value // per-wake values, seeded from Consts
	sigs map[ir.Value]engine.SigRef

	regPrev map[*ir.Inst][]val.Value // previous trigger samples per reg
	delPrev map[*ir.Inst]val.Value   // previous input value per del
}

func newEntityInterp(s *Simulator, inst *engine.Instance) *entityInterp {
	en := &entityInterp{
		sim:     s,
		inst:    inst,
		env:     map[ir.Value]val.Value{},
		sigs:    map[ir.Value]engine.SigRef{},
		regPrev: map[*ir.Inst][]val.Value{},
		delPrev: map[*ir.Inst]val.Value{},
	}
	for v, r := range inst.Bind {
		en.sigs[v] = r
	}
	return en
}

func (en *entityInterp) Name() string { return en.inst.Name }

// Init subscribes the entity permanently to every signal it probes and
// runs the body once.
func (en *entityInterp) Init(e *engine.Engine) {
	var refs []engine.SigRef
	seen := map[*engine.Signal]bool{}
	for _, in := range en.inst.Unit.Body().Insts {
		watch := func(v ir.Value) {
			if r, ok := en.sigs[v]; ok && !seen[r.Sig] {
				seen[r.Sig] = true
				refs = append(refs, r)
			}
		}
		switch in.Op {
		case ir.OpPrb:
			watch(in.Args[0])
		case ir.OpDel:
			watch(in.Args[1])
		}
	}
	e.Subscribe(en.ProcID(), refs)
	en.eval(e, true)
}

func (en *entityInterp) Wake(e *engine.Engine) {
	en.eval(e, false)
}

// eval executes the reactive body in order. On the first pass (init=true)
// reg and del record baseline samples without firing edge triggers.
func (en *entityInterp) eval(e *engine.Engine, init bool) {
	// Seed with elaboration-time constants; runtime values overwrite.
	clear(en.env)
	for v, c := range en.inst.Consts {
		en.env[v] = c
	}
	for _, in := range en.inst.Unit.Body().Insts {
		if err := en.evalInst(e, in, init); err != nil {
			e.SetError(fmt.Errorf("sim: %s: %w", en.inst.Name, err))
			return
		}
	}
}

func (en *entityInterp) evalInst(e *engine.Engine, in *ir.Inst, init bool) error {
	switch in.Op {
	case ir.OpSig, ir.OpInst, ir.OpCon:
		return nil // handled at elaboration

	case ir.OpPrb:
		r, ok := en.sigs[in.Args[0]]
		if !ok {
			return fmt.Errorf("prb of unbound signal %s", in.Args[0])
		}
		en.env[in] = e.Probe(r)
		return nil

	case ir.OpExtF:
		if r, ok := en.sigs[in.Args[0]]; ok {
			en.sigs[in] = r.Extend(engine.Proj{Kind: engine.ProjField, A: in.Imm0})
			return nil
		}
	case ir.OpExtS:
		if r, ok := en.sigs[in.Args[0]]; ok {
			en.sigs[in] = r.Extend(engine.Proj{Kind: engine.ProjSlice, A: in.Imm0, B: in.Imm1})
			return nil
		}

	case ir.OpDrv:
		r, ok := en.sigs[in.Args[0]]
		if !ok {
			return fmt.Errorf("drv of unbound signal %s", in.Args[0])
		}
		v, ok := en.env[in.Args[1]]
		if !ok {
			return fmt.Errorf("drv value %s not computed", in.Args[1])
		}
		d, ok := en.env[in.Args[2]]
		if !ok {
			return fmt.Errorf("drv delay %s not computed", in.Args[2])
		}
		if len(in.Args) == 4 {
			cond, ok := en.env[in.Args[3]]
			if !ok {
				return fmt.Errorf("drv condition %s not computed", in.Args[3])
			}
			if !cond.IsTrue() {
				return nil
			}
		}
		e.Drive(r, v, d.T)
		return nil

	case ir.OpReg:
		return en.evalReg(e, in, init)

	case ir.OpDel:
		r, ok := en.sigs[in.Args[0]]
		if !ok {
			return fmt.Errorf("del of unbound signal %s", in.Args[0])
		}
		src, ok := en.sigs[in.Args[1]]
		if !ok {
			return fmt.Errorf("del source %s not a signal", in.Args[1])
		}
		d, ok := en.env[in.Args[2]]
		if !ok {
			return fmt.Errorf("del delay %s not computed", in.Args[2])
		}
		cur := e.Probe(src)
		if init {
			en.delPrev[in] = cur
			return nil
		}
		if prev, ok := en.delPrev[in]; !ok || !cur.Eq(prev) {
			en.delPrev[in] = cur
			e.Drive(r, cur, d.T)
		}
		return nil

	case ir.OpCall:
		rv, err := interpretCall(en.sim, e, in, func(v ir.Value) (val.Value, error) {
			x, ok := en.env[v]
			if !ok {
				return val.Value{}, fmt.Errorf("call argument %s not computed", v)
			}
			return x, nil
		})
		if err != nil {
			return err
		}
		if !in.Ty.IsVoid() {
			en.env[in] = rv
		}
		return nil
	}

	// Pure data flow (includes extf/exts on plain values falling through).
	v, err := engine.EvalPure(in, func(x ir.Value) (val.Value, bool) {
		rv, ok := en.env[x]
		return rv, ok
	})
	if err != nil {
		return err
	}
	en.env[in] = v
	return nil
}

// evalReg implements the reg storage element (§2.5.3): on each wake,
// sample every trigger; fire the matching edge/level clauses and drive the
// stored value onto the register's signal.
func (en *entityInterp) evalReg(e *engine.Engine, in *ir.Inst, init bool) error {
	r, ok := en.sigs[in.Args[0]]
	if !ok {
		return fmt.Errorf("reg of unbound signal %s", in.Args[0])
	}
	prev := en.regPrev[in]
	cur := make([]val.Value, len(in.Triggers))
	for i, tr := range in.Triggers {
		c, ok := en.env[tr.Trigger]
		if !ok {
			return fmt.Errorf("reg trigger %s not computed", tr.Trigger)
		}
		cur[i] = c
	}
	defer func() { en.regPrev[in] = cur }()
	if init || prev == nil {
		return nil
	}

	delay := ir.Time{}
	if in.Delay != nil {
		d, ok := en.env[in.Delay]
		if !ok {
			return fmt.Errorf("reg delay %s not computed", in.Delay)
		}
		delay = d.T
	}

	for i, tr := range in.Triggers {
		was, now := prev[i].IsTrue(), cur[i].IsTrue()
		fired := false
		switch tr.Mode {
		case ir.RegRise:
			fired = !was && now
		case ir.RegFall:
			fired = was && !now
		case ir.RegBoth:
			fired = was != now
		case ir.RegHigh:
			fired = now
		case ir.RegLow:
			fired = !now
		}
		if !fired {
			continue
		}
		if tr.Gate != nil {
			g, ok := en.env[tr.Gate]
			if !ok {
				return fmt.Errorf("reg gate %s not computed", tr.Gate)
			}
			if !g.IsTrue() {
				continue
			}
		}
		v, ok := en.env[tr.Value]
		if !ok {
			return fmt.Errorf("reg stored value %s not computed", tr.Value)
		}
		e.Drive(r, v, delay)
		break // first firing trigger wins
	}
	return nil
}
