package sim

import (
	"fmt"

	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/val"
)

// entityInterp interprets the reactive body of an entity instance: the
// instructions that the elaborator could not fold into constants (prb,
// drv, reg, del, and data flow downstream of probes). Per §2.4.3 the body
// executes once at initialization and again whenever an input changes.
//
// The frame's constant prefix is seeded from the instance's dense constant
// table exactly once at construction; each wake invalidates the runtime
// slots with a single stamp bump instead of rebuilding the environment.
type entityInterp struct {
	engine.ProcHandle
	sim  *Simulator
	inst *engine.Instance

	frame *frame // per-wake values; consts survive reset
	sigTable

	// Previous-sample histories for reg and del, indexed by value ID and
	// materialized on first use (most entities have neither).
	regPrev    [][]val.Value // value ID -> previous trigger samples per reg
	regScratch []val.Value   // reusable per-wake sample buffer
	delPrev    []val.Value   // value ID -> previous input value per del
	delKnown   []bool
}

func newEntityInterp(s *Simulator, inst *engine.Instance) *entityInterp {
	n := inst.Numbering().Len()
	en := &entityInterp{
		sim:   s,
		inst:  inst,
		frame: newFrame(n),
	}
	en.seedSigs(inst, n)
	// Seed the constant prefix once; reset never touches it.
	consts, isConst := inst.ConstTable()
	for id, ok := range isConst {
		if ok {
			en.frame.seedConst(id, consts[id])
		}
	}
	return en
}

func (en *entityInterp) Name() string { return en.inst.Name }

// value resolves an operand to its runtime value.
func (en *entityInterp) value(v ir.Value) (val.Value, error) {
	if id := ir.ValueID(v); id >= 0 {
		if rv, ok := en.frame.get(id); ok {
			return rv, nil
		}
	}
	return val.Value{}, fmt.Errorf("operand %s not computed", v)
}

// Init subscribes the entity permanently to every signal it probes and
// runs the body once.
func (en *entityInterp) Init(e *engine.Engine) {
	var refs []engine.SigRef
	seen := map[*engine.Signal]bool{}
	for _, in := range en.inst.Unit.Body().Insts {
		watch := func(v ir.Value) {
			if r, ok := en.sigOf(v); ok && !seen[r.Sig] {
				seen[r.Sig] = true
				refs = append(refs, r)
			}
		}
		switch in.Op {
		case ir.OpPrb:
			watch(in.Args[0])
		case ir.OpDel:
			watch(in.Args[1])
		}
	}
	e.Subscribe(en.ProcID(), refs)
	en.eval(e, true)
}

func (en *entityInterp) Wake(e *engine.Engine) {
	en.eval(e, false)
}

// eval executes the reactive body in order. On the first pass (init=true)
// reg and del record baseline samples without firing edge triggers.
func (en *entityInterp) eval(e *engine.Engine, init bool) {
	// Invalidate the previous wake's runtime values; the elaboration-time
	// constant prefix stays valid across the stamp bump.
	en.frame.reset()
	for _, in := range en.inst.Unit.Body().Insts {
		if err := en.evalInst(e, in, init); err != nil {
			e.SetError(fmt.Errorf("sim: %s: %w", en.inst.Name, err))
			return
		}
	}
}

func (en *entityInterp) evalInst(e *engine.Engine, in *ir.Inst, init bool) error {
	switch in.Op {
	case ir.OpSig, ir.OpInst, ir.OpCon:
		return nil // handled at elaboration

	case ir.OpPrb:
		r, ok := en.sigOf(in.Args[0])
		if !ok {
			return fmt.Errorf("prb of unbound signal %s", in.Args[0])
		}
		en.frame.set(ir.ValueID(in), e.Probe(r))
		return nil

	case ir.OpExtF:
		if r, ok := en.sigOf(in.Args[0]); ok {
			en.setSig(in, r.Extend(engine.Proj{Kind: engine.ProjField, A: in.Imm0}))
			return nil
		}
	case ir.OpExtS:
		if r, ok := en.sigOf(in.Args[0]); ok {
			en.setSig(in, r.Extend(engine.Proj{Kind: engine.ProjSlice, A: in.Imm0, B: in.Imm1}))
			return nil
		}

	case ir.OpDrv:
		r, ok := en.sigOf(in.Args[0])
		if !ok {
			return fmt.Errorf("drv of unbound signal %s", in.Args[0])
		}
		v, err := en.value(in.Args[1])
		if err != nil {
			return fmt.Errorf("drv value %s not computed", in.Args[1])
		}
		d, err := en.value(in.Args[2])
		if err != nil {
			return fmt.Errorf("drv delay %s not computed", in.Args[2])
		}
		if len(in.Args) == 4 {
			cond, err := en.value(in.Args[3])
			if err != nil {
				return fmt.Errorf("drv condition %s not computed", in.Args[3])
			}
			if !cond.IsTrue() {
				return nil
			}
		}
		e.Drive(r, v, d.T)
		return nil

	case ir.OpReg:
		return en.evalReg(e, in, init)

	case ir.OpDel:
		r, ok := en.sigOf(in.Args[0])
		if !ok {
			return fmt.Errorf("del of unbound signal %s", in.Args[0])
		}
		src, ok := en.sigOf(in.Args[1])
		if !ok {
			return fmt.Errorf("del source %s not a signal", in.Args[1])
		}
		d, err := en.value(in.Args[2])
		if err != nil {
			return fmt.Errorf("del delay %s not computed", in.Args[2])
		}
		cur := e.Probe(src)
		id := ir.ValueID(in)
		if en.delPrev == nil {
			n := len(en.sigs)
			en.delPrev = make([]val.Value, n)
			en.delKnown = make([]bool, n)
		}
		if init {
			en.delPrev[id] = cur
			en.delKnown[id] = true
			return nil
		}
		if !en.delKnown[id] || !cur.Eq(en.delPrev[id]) {
			en.delPrev[id] = cur
			en.delKnown[id] = true
			e.Drive(r, cur, d.T)
		}
		return nil

	case ir.OpCall:
		rv, err := interpretCall(en.sim, e, in, en.value)
		if err != nil {
			return err
		}
		if !in.Ty.IsVoid() {
			en.frame.set(ir.ValueID(in), rv)
		}
		return nil
	}

	// Pure data flow (includes extf/exts on plain values falling through).
	// Scalar-integer ops run in place on the frame.
	if en.frame.evalFast(in) {
		return nil
	}
	v, err := engine.EvalPure(in, en.frame.lookup)
	if err != nil {
		return err
	}
	en.frame.set(ir.ValueID(in), v)
	return nil
}

// evalReg implements the reg storage element (§2.5.3): on each wake,
// sample every trigger; fire the matching edge/level clauses and drive the
// stored value onto the register's signal. Trigger samples are kept in a
// dense per-reg history written in place, so the steady-state wake path
// does not allocate.
func (en *entityInterp) evalReg(e *engine.Engine, in *ir.Inst, init bool) error {
	r, ok := en.sigOf(in.Args[0])
	if !ok {
		return fmt.Errorf("reg of unbound signal %s", in.Args[0])
	}
	id := ir.ValueID(in)
	if en.regPrev == nil {
		en.regPrev = make([][]val.Value, len(en.sigs))
	}
	prev := en.regPrev[id]
	cur := en.regScratch[:0]
	for _, tr := range in.Triggers {
		c, err := en.value(tr.Trigger)
		if err != nil {
			return fmt.Errorf("reg trigger %s not computed", tr.Trigger)
		}
		cur = append(cur, c)
	}
	en.regScratch = cur
	// Persist the samples on every exit, like the former deferred map store.
	store := func() {
		if prev == nil {
			en.regPrev[id] = append([]val.Value(nil), cur...)
		} else {
			copy(prev, cur)
		}
	}
	if init || prev == nil {
		store()
		return nil
	}

	delay := ir.Time{}
	if in.Delay != nil {
		d, err := en.value(in.Delay)
		if err != nil {
			store()
			return fmt.Errorf("reg delay %s not computed", in.Delay)
		}
		delay = d.T
	}

	for i, tr := range in.Triggers {
		was, now := prev[i].IsTrue(), cur[i].IsTrue()
		fired := false
		switch tr.Mode {
		case ir.RegRise:
			fired = !was && now
		case ir.RegFall:
			fired = was && !now
		case ir.RegBoth:
			fired = was != now
		case ir.RegHigh:
			fired = now
		case ir.RegLow:
			fired = !now
		}
		if !fired {
			continue
		}
		if tr.Gate != nil {
			g, err := en.value(tr.Gate)
			if err != nil {
				store()
				return fmt.Errorf("reg gate %s not computed", tr.Gate)
			}
			if !g.IsTrue() {
				continue
			}
		}
		v, err := en.value(tr.Value)
		if err != nil {
			store()
			return fmt.Errorf("reg stored value %s not computed", tr.Value)
		}
		e.Drive(r, v, delay)
		break // first firing trigger wins
	}
	store()
	return nil
}
