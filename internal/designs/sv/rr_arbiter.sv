// Four-requester round-robin arbiter with a rotating priority pointer,
// cross-checked against a software model over several request patterns.
module rr_arbiter (input clk, input rst, input [3:0] req, output [3:0] gnt);
  bit [1:0] ptr;
  always_comb begin
    automatic int k;
    automatic int idx;
    automatic bit found;
    automatic bit [3:0] gv;
    gv = 0;
    found = 0;
    for (k = 0; k < 4; k = k + 1) begin
      idx = (ptr + k) & 3;
      if (!found && req[idx]) begin
        gv = 4'b0001 << idx;
        found = 1;
      end
    end
    gnt = gv;
  end
  always_ff @(posedge clk) begin
    if (rst) ptr <= 0;
    else if (gnt[0]) ptr <= 1;
    else if (gnt[1]) ptr <= 2;
    else if (gnt[2]) ptr <= 3;
    else if (gnt[3]) ptr <= 0;
  end
endmodule

module rr_arbiter_tb;
  bit clk, rst;
  bit [3:0] req, gnt;
  rr_arbiter i_dut (.*);

  function bit [3:0] arb_model(bit [1:0] p, bit [3:0] r);
    int k;
    int idx;
    bit f;
    bit [3:0] gv;
    gv = 0;
    f = 0;
    for (k = 0; k < 4; k = k + 1) begin
      idx = (p + k) & 3;
      if (!f && r[idx]) begin
        gv = 4'b0001 << idx;
        f = 1;
      end
    end
    arb_model = gv;
  endfunction

  initial begin
    automatic int pi;
    automatic int i;
    automatic bit [3:0] r;
    automatic bit [3:0] eg;
    automatic bit [1:0] mp;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    mp = 0;
    for (pi = 0; pi < 6; pi = pi + 1) begin
      case (pi)
        0: r = 4'b1111;
        1: r = 4'b0101;
        2: r = 4'b1010;
        3: r = 4'b1001;
        4: r = 4'b0001;
        default: r = 4'b0000;
      endcase
      req <= r;
      for (i = 0; i < 8; i = i + 1) begin
        #1ns;
        eg = arb_model(mp, r);
        assert(gnt == eg);
        clk <= #1ns 1;
        clk <= #2ns 0;
        #2ns;
        if (eg[0]) mp = 1;
        else if (eg[1]) mp = 2;
        else if (eg[2]) mp = 3;
        else if (eg[3]) mp = 0;
      end
    end
    $finish;
  end
endmodule
