// Clock-domain crossing of a counter via Gray encoding and a two-flop
// synchronizer. Two free-running, unrelated clocks (4ns and 6ns periods);
// after the source domain stops, the destination domain must have converged
// on the exact final count.
module sync2 #(parameter int W = 8) (input clk, input [W-1:0] d, output [W-1:0] q);
  bit [W-1:0] s1;
  always_ff @(posedge clk) begin
    s1 <= d;
    q <= s1;
  end
endmodule

module cdc_gray_tb;
  bit clk_a, clk_b, inc;
  bit [7:0] cnt, g, gs, dec;

  always_ff @(posedge clk_a) begin
    if (inc) cnt <= cnt + 1;
  end
  assign g = cnt ^ (cnt >> 1);
  sync2 #(.W(8)) i_sync (.clk(clk_b), .d(g), .q(gs));
  always_comb begin
    automatic int i;
    automatic bit [7:0] acc;
    acc = gs;
    for (i = 1; i < 8; i = i + 1) begin
      acc = acc ^ (gs >> i);
    end
    dec = acc;
  end

  // Source domain: 96 increments at a 4ns period, then idle.
  initial begin
    automatic int i;
    inc <= 1;
    for (i = 0; i < 96; i = i + 1) begin
      clk_a <= #1ns 1;
      clk_a <= #3ns 0;
      #4ns;
    end
    inc <= 0;
  end

  // Destination domain: free-running 6ns clock, outlives the source.
  initial begin
    automatic int i;
    for (i = 0; i < 80; i = i + 1) begin
      clk_b <= #1ns 1;
      clk_b <= #3ns 0;
      #6ns;
    end
    assert(cnt == 96);
    assert(gs == (96 ^ (96 >> 1)));
    assert(dec == 96);
    $finish;
  end
endmodule
