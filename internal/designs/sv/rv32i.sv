// Full single-cycle RV32I conformance core. Unlike the Table 2 `riscv`
// design (a frozen 6-op benchmark), this core implements the complete
// RV32I base ISA — lui/auipc, jal/jalr, all six branches, the full
// ALU/ALU-immediate set, and byte/halfword/word loads and stores — and
// loads its program with $readmemh, so the conformance suite can feed it
// assembler-built images. The machine model (memory sizes, sub-word
// truncation, tohost/dump protocol) is specified in internal/riscv and
// mirrored by the reference ISS there; keep the two in lockstep.
//
//   - A word store to 32'h100 (tohost) latches the riscv-tests verdict
//     and halts: 1 = pass, (n<<1)|1 = test n failed.
//   - A word store to 32'h104 streams {sequence#, value} onto the dump
//     output, which conformance images use to expose final registers
//     and data memory. The sequence number keeps back-to-back dumps of
//     equal values distinct in signal traces.
module rv32i_core (input clk, input rst,
                   output [31:0] tohost, output done, output [63:0] dump);
  bit [31:0] imem [0:255];
  bit [31:0] rf [0:31];
  bit [31:0] dmem [0:63];
  bit [31:0] pc;
  bit [31:0] dumpcnt;

  initial $readmemh("rv32i.hex", imem);

  always_ff @(posedge clk) begin
    automatic bit [31:0] instr, rs1v, rs2v, iimm, simm, bimm, uimm, jimm;
    automatic bit [31:0] res, addr, word, nextpc;
    automatic bit [6:0] op, f7;
    automatic bit [4:0] rd, rs1, rs2, sh;
    automatic bit [2:0] f3;
    automatic bit [15:0] h16;
    automatic bit [7:0] b8;
    automatic bit wen;
    automatic int k;
    if (rst) begin
      pc <= 0;
      done <= 0;
      tohost <= 0;
      dump <= 0;
      dumpcnt <= 0;
      for (k = 0; k < 32; k = k + 1) begin
        rf[k] = 0;
      end
    end else if (!done) begin
      instr = imem[pc[9:2]];
      op = instr[6:0];
      rd = instr[11:7];
      f3 = instr[14:12];
      rs1 = instr[19:15];
      rs2 = instr[24:20];
      f7 = instr[31:25];
      rs1v = rf[rs1];
      rs2v = rf[rs2];
      iimm = {{20{instr[31]}}, instr[31:20]};
      simm = {{20{instr[31]}}, instr[31:25], instr[11:7]};
      bimm = {{20{instr[31]}}, instr[7], instr[30:25], instr[11:8], 1'b0};
      uimm = {instr[31:12], 12'b0};
      jimm = {{12{instr[31]}}, instr[19:12], instr[20], instr[30:21], 1'b0};
      nextpc = pc + 4;
      res = 0;
      wen = 0;
      if (op == 7'h37) begin            // lui
        res = uimm;
        wen = 1;
      end else if (op == 7'h17) begin   // auipc
        res = pc + uimm;
        wen = 1;
      end else if (op == 7'h6F) begin   // jal
        res = pc + 4;
        wen = 1;
        nextpc = pc + jimm;
      end else if (op == 7'h67) begin   // jalr
        res = pc + 4;
        wen = 1;
        nextpc = (rs1v + iimm) & 32'hFFFFFFFE;
      end else if (op == 7'h63) begin   // branches
        if (f3 == 3'h0) begin
          if (rs1v == rs2v) nextpc = pc + bimm;
        end else if (f3 == 3'h1) begin
          if (rs1v != rs2v) nextpc = pc + bimm;
        end else if (f3 == 3'h4) begin
          if ($signed(rs1v) < $signed(rs2v)) nextpc = pc + bimm;
        end else if (f3 == 3'h5) begin
          if ($signed(rs1v) >= $signed(rs2v)) nextpc = pc + bimm;
        end else if (f3 == 3'h6) begin
          if (rs1v < rs2v) nextpc = pc + bimm;
        end else if (f3 == 3'h7) begin
          if (rs1v >= rs2v) nextpc = pc + bimm;
        end
      end else if (op == 7'h13) begin   // ALU immediate
        sh = instr[24:20];
        wen = 1;
        if (f3 == 3'h0) res = rs1v + iimm;
        else if (f3 == 3'h1) res = rs1v << sh;
        else if (f3 == 3'h2) res = {31'b0, $signed(rs1v) < $signed(iimm)};
        else if (f3 == 3'h3) res = {31'b0, rs1v < iimm};
        else if (f3 == 3'h4) res = rs1v ^ iimm;
        else if (f3 == 3'h5) begin
          if (f7 == 7'h20) res = $signed(rs1v) >>> sh;
          else res = rs1v >> sh;
        end
        else if (f3 == 3'h6) res = rs1v | iimm;
        else res = rs1v & iimm;
      end else if (op == 7'h33) begin   // ALU register
        sh = rs2v[4:0];
        wen = 1;
        if (f3 == 3'h0) begin
          if (f7 == 7'h20) res = rs1v - rs2v;
          else res = rs1v + rs2v;
        end
        else if (f3 == 3'h1) res = rs1v << sh;
        else if (f3 == 3'h2) res = {31'b0, $signed(rs1v) < $signed(rs2v)};
        else if (f3 == 3'h3) res = {31'b0, rs1v < rs2v};
        else if (f3 == 3'h4) res = rs1v ^ rs2v;
        else if (f3 == 3'h5) begin
          if (f7 == 7'h20) res = $signed(rs1v) >>> sh;
          else res = rs1v >> sh;
        end
        else if (f3 == 3'h6) res = rs1v | rs2v;
        else res = rs1v & rs2v;
      end else if (op == 7'h03) begin   // loads
        addr = rs1v + iimm;
        word = dmem[addr[7:2]];
        wen = 1;
        if (f3 == 3'h0) begin           // lb
          b8 = word[{addr[1:0], 3'b000} +: 8];
          res = {{24{b8[7]}}, b8};
        end else if (f3 == 3'h1) begin  // lh
          h16 = word[{addr[1:0], 3'b000} +: 16];
          res = {{16{h16[15]}}, h16};
        end else if (f3 == 3'h4) begin  // lbu
          b8 = word[{addr[1:0], 3'b000} +: 8];
          res = {24'b0, b8};
        end else if (f3 == 3'h5) begin  // lhu
          h16 = word[{addr[1:0], 3'b000} +: 16];
          res = {16'b0, h16};
        end else begin                  // lw
          res = word;
        end
      end else if (op == 7'h23) begin   // stores
        addr = rs1v + simm;
        if (addr == 32'h100 && f3 == 3'h2) begin
          tohost <= rs2v;               // verdict: halt the machine
          done <= 1;
          nextpc = pc;
        end else if (addr == 32'h104 && f3 == 3'h2) begin
          dump <= {dumpcnt + 32'd1, rs2v};
          dumpcnt <= dumpcnt + 1;
        end else begin
          word = dmem[addr[7:2]];
          if (f3 == 3'h0) word[{addr[1:0], 3'b000} +: 8] = rs2v[7:0];
          else if (f3 == 3'h1) word[{addr[1:0], 3'b000} +: 16] = rs2v[15:0];
          else word = rs2v;
          dmem[addr[7:2]] = word;
        end
      end else if (op == 7'h73) begin   // ebreak/ecall: halt, no verdict
        done <= 1;
        nextpc = pc;
      end
      if (wen) begin
        if (rd != 0) rf[rd] = res;
      end
      pc <= nextpc;
    end
  end
endmodule

module rv32i_tb;
  bit clk, rst;
  bit [31:0] tohost;
  bit [63:0] dump;
  bit done;
  rv32i_core i_core (.clk(clk), .rst(rst), .tohost(tohost),
                     .done(done), .dump(dump));

  initial begin
    automatic int i;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    for (i = 0; i < 600; i = i + 1) begin
      if (!done) begin
        clk <= #1ns 1;
        clk <= #2ns 0;
        #2ns;
      end
    end
    assert(done == 1);
    $finish;
  end
endmodule
