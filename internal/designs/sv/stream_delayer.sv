// Stream delayer: a valid/data stream delayed by exactly four cycles
// through a register pipe, compared against a software model shifting in
// lock-step with the hardware.
module stream_delayer #(parameter int W = 8)
  (input clk, input rst, input vin, input [W-1:0] din,
   output vout, output [W-1:0] dout);
  bit [3:0] v;
  bit [W-1:0] d0, d1, d2, d3;
  always_ff @(posedge clk) begin
    if (rst) v <= 0;
    else v <= {v[2:0], vin};
    d3 <= d2;
    d2 <= d1;
    d1 <= d0;
    d0 <= din;
  end
  assign vout = v[3];
  assign dout = d3;
endmodule

module stream_delayer_tb;
  bit clk, rst, vin, vout;
  bit [7:0] din, dout;
  stream_delayer #(.W(8)) i_dut (.*);

  initial begin
    automatic int i;
    automatic bit mv0, mv1, mv2, mv3;
    automatic bit [7:0] md0, md1, md2, md3;
    automatic bit v_now;
    automatic bit [7:0] d_now;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    mv0 = 0; mv1 = 0; mv2 = 0; mv3 = 0;
    md0 = 0; md1 = 0; md2 = 0; md3 = 0;
    for (i = 0; i < 300; i = i + 1) begin
      v_now = (i % 3) != 0;
      d_now = i * 5 + 3;
      vin <= v_now;
      din <= d_now;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
      mv3 = mv2; mv2 = mv1; mv1 = mv0; mv0 = v_now;
      md3 = md2; md2 = md1; md1 = md0; md0 = d_now;
      assert(vout == mv3);
      assert(dout == md3);
    end
    $finish;
  end
endmodule
