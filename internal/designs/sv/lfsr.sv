// 8-bit Fibonacci LFSR (taps x^8 + x^6 + x^5 + x^4 + 1) checked against a
// bit-true software model for a full walk of 255 states.
module lfsr (input clk, input rst, output [7:0] q);
  always_ff @(posedge clk) begin
    if (rst) q <= 8'h01;
    else q <= {q[6:0], q[7] ^ q[5] ^ q[4] ^ q[3]};
  end
endmodule

module lfsr_tb;
  bit clk, rst;
  bit [7:0] q;
  lfsr i_dut (.clk(clk), .rst(rst), .q(q));

  initial begin
    automatic int i;
    automatic bit [7:0] model;
    automatic bit fb;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    model = 8'h01;
    for (i = 0; i < 255; i = i + 1) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
      fb = model[7] ^ model[5] ^ model[4] ^ model[3];
      model = {model[6:0], fb};
      assert(q == model);
      assert(q != 0);
    end
    // Maximal-length sequence returns to the seed after 255 steps.
    assert(q == 8'h01);
    $finish;
  end
endmodule
