// Gray encoder/decoder with an exhaustive 8-bit self-checking testbench.
// Checks the two defining properties: decode(encode(i)) == i, and adjacent
// codes differ in exactly one bit position.
module gray_enc #(parameter int W = 8) (input [W-1:0] bin, output [W-1:0] g);
  assign g = bin ^ (bin >> 1);
endmodule

module gray_dec #(parameter int W = 8) (input [W-1:0] g, output [W-1:0] bin);
  always_comb begin
    automatic int i;
    automatic bit [7:0] acc;
    acc = g;
    for (i = 1; i < W; i = i + 1) begin
      acc = acc ^ (g >> i);
    end
    bin = acc;
  end
endmodule

module gray_tb;
  bit [7:0] b, g, dec;
  bit [7:0] prev;
  gray_enc #(.W(8)) i_enc (.bin(b), .g(g));
  gray_dec #(.W(8)) i_dec (.g(g), .bin(dec));

  function bit [3:0] popcount(bit [7:0] x);
    int k;
    bit [3:0] n;
    n = 0;
    for (k = 0; k < 8; k = k + 1) begin
      if (x[k]) n = n + 1;
    end
    popcount = n;
  endfunction

  initial begin
    automatic int i;
    automatic bit [7:0] last;
    last = 0;
    for (i = 0; i < 256; i = i + 1) begin
      b <= i[7:0];
      #1ns;
      assert(dec == i[7:0]);
      if (i > 0) assert(popcount(g ^ last) == 1);
      last = g;
    end
    $finish;
  end
endmodule
