// 4-tap FIR filter (coefficients 1, 2, 3, 4) with a cycle-accurate software
// model in the testbench.
module fir #(parameter int W = 16) (input clk, input rst, input [W-1:0] x, output [W-1:0] y);
  bit [W-1:0] d0, d1, d2, d3;
  always_ff @(posedge clk) begin
    if (rst) begin
      d0 <= 0;
      d1 <= 0;
      d2 <= 0;
      d3 <= 0;
    end else begin
      d3 <= d2;
      d2 <= d1;
      d1 <= d0;
      d0 <= x;
    end
  end
  assign y = d0 + 2 * d1 + 3 * d2 + 4 * d3;
endmodule

module fir_tb;
  bit clk, rst;
  bit [15:0] x, y;
  fir #(.W(16)) i_dut (.clk(clk), .rst(rst), .x(x), .y(y));

  initial begin
    automatic int i;
    automatic bit [15:0] m0, m1, m2, m3, exp, sample;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    m0 = 0; m1 = 0; m2 = 0; m3 = 0;
    for (i = 0; i < 200; i = i + 1) begin
      sample = i * 3 + 1;
      x <= sample;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
      m3 = m2; m2 = m1; m1 = m0; m0 = sample;
      exp = m0 + 2 * m1 + 3 * m2 + 4 * m3;
      assert(y == exp);
    end
    $finish;
  end
endmodule
