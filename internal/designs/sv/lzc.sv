// 16-bit leading-zero counter, cross-checked against a reference model in
// the testbench over a sweep of bit patterns.
module lzc #(parameter int W = 16) (input [W-1:0] x, output [4:0] n);
  always_comb begin
    automatic int i;
    automatic bit [4:0] cnt;
    automatic bit done;
    cnt = 0;
    done = 0;
    for (i = W; i > 0; i = i - 1) begin
      if (!done) begin
        if (x[i-1]) done = 1;
        else cnt = cnt + 1;
      end
    end
    n = cnt;
  end
endmodule

module lzc_tb;
  bit [15:0] x;
  bit [4:0] n;
  lzc #(.W(16)) i_dut (.x(x), .n(n));

  function bit [4:0] model(bit [15:0] v);
    int k;
    bit [4:0] c;
    bit seen;
    c = 0;
    seen = 0;
    for (k = 16; k > 0; k = k - 1) begin
      if (!seen) begin
        if (v[k-1]) seen = 1;
        else c = c + 1;
      end
    end
    model = c;
  endfunction

  initial begin
    automatic int i;
    automatic bit [15:0] pat;
    // Walking one.
    for (i = 0; i < 16; i = i + 1) begin
      x <= 16'h0001 << i;
      #1ns;
      assert(n == 15 - i);
    end
    // All-zero input counts every position.
    x <= 0;
    #1ns;
    assert(n == 16);
    // Pseudo-random sweep.
    pat = 16'hACE1;
    for (i = 0; i < 200; i = i + 1) begin
      pat = {pat[14:0], pat[15] ^ pat[13] ^ pat[12] ^ pat[10]};
      x <= pat;
      #1ns;
      assert(n == model(pat));
    end
    $finish;
  end
endmodule
