// Depth-8 FIFO queue with full/empty flags, exercised through fill, drain,
// and simultaneous push/pop phases; ordering is checked against the
// arithmetic sequence of pushed values.
module fifo #(parameter int W = 16)
  (input clk, input rst, input push, input [W-1:0] din,
   input pop, output [W-1:0] dout, output full, output empty);
  bit [W-1:0] mem [0:7];
  bit [2:0] rp, wp;
  bit [3:0] cnt;
  assign full = cnt == 8;
  assign empty = cnt == 0;
  always_ff @(posedge clk) begin
    if (rst) begin
      rp <= 0;
      wp <= 0;
      cnt <= 0;
      dout <= 0;
    end else begin
      if (push && cnt != 8) begin
        mem[wp] = din;
        wp <= wp + 1;
      end
      if (pop && cnt != 0) begin
        dout <= mem[rp];
        rp <= rp + 1;
      end
      if (push && cnt != 8 && !(pop && cnt != 0)) cnt <= cnt + 1;
      else if (pop && cnt != 0 && !(push && cnt != 8)) cnt <= cnt - 1;
    end
  end
endmodule

module fifo_tb;
  bit clk, rst, push, pop;
  bit [15:0] din, dout;
  bit full, empty;
  fifo #(.W(16)) i_dut (.*);

  initial begin
    automatic int i;
    automatic int wr, rd;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    wr = 0;
    rd = 0;
    #1ns;
    assert(empty == 1);
    assert(full == 0);
    // Phase 1: fill completely.
    push <= 1;
    for (i = 0; i < 8; i = i + 1) begin
      din <= wr * 7 + 1;
      wr = wr + 1;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
    push <= 0;
    #1ns;
    assert(full == 1);
    assert(empty == 0);
    // Phase 2: drain half, checking FIFO order.
    pop <= 1;
    for (i = 0; i < 4; i = i + 1) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
      assert(dout == rd * 7 + 1);
      rd = rd + 1;
    end
    pop <= 0;
    // Phase 3: simultaneous push and pop at steady state.
    push <= 1;
    pop <= 1;
    for (i = 0; i < 16; i = i + 1) begin
      din <= wr * 7 + 1;
      wr = wr + 1;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
      assert(dout == rd * 7 + 1);
      rd = rd + 1;
    end
    push <= 0;
    // Phase 4: drain the rest.
    for (i = 0; i < 4; i = i + 1) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
      assert(dout == rd * 7 + 1);
      rd = rd + 1;
    end
    pop <= 0;
    #1ns;
    assert(empty == 1);
    assert(rd == wr);
    $finish;
  end
endmodule
