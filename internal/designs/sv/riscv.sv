// Single-cycle RV32I subset core (addi/add/blt/lw/sw/ebreak) with a
// preloaded program that sums the integers 1..100 into x10, round-trips
// the sum through data memory, and halts. The testbench clocks the core to
// completion and checks the architectural result.
module riscv_core (input clk, input rst, output [31:0] x10, output done);
  bit [31:0] imem [0:31] = '{
    32'h00000093, // addi x1,  x0, 0      ; i   = 0
    32'h00000513, // addi x10, x0, 0      ; sum = 0
    32'h06400113, // addi x2,  x0, 100    ; lim = 100
    32'h00108093, // loop: addi x1, x1, 1 ; i   = i + 1
    32'h00150533, // add  x10, x10, x1    ; sum = sum + i
    32'hFE20CCE3, // blt  x1,  x2, loop
    32'h00A02823, // sw   x10, 16(x0)     ; spill the sum
    32'h00000513, // addi x10, x0, 0      ; clobber it
    32'h01002503, // lw   x10, 16(x0)     ; reload the sum
    32'h00100073, // ebreak               ; halt
    32'h00000013, // nop padding
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013,
    32'h00000013
  };
  bit [31:0] rf [0:31];
  bit [31:0] dmem [0:63];
  bit [31:0] pc;

  always_ff @(posedge clk) begin
    automatic bit [31:0] instr, rs1v, rs2v, imm, simm, bimm, res;
    automatic bit [6:0] op;
    automatic bit [4:0] rd, rs1, rs2;
    automatic int k;
    if (rst) begin
      pc <= 0;
      done <= 0;
      x10 <= 0;
      for (k = 0; k < 32; k = k + 1) begin
        rf[k] = 0;
      end
    end else if (!done) begin
      instr = imem[pc[6:2]];
      op = instr[6:0];
      rd = instr[11:7];
      rs1 = instr[19:15];
      rs2 = instr[24:20];
      rs1v = rf[rs1];
      rs2v = rf[rs2];
      imm = {{20{instr[31]}}, instr[31:20]};
      simm = {{20{instr[31]}}, instr[31:25], instr[11:7]};
      bimm = {{20{instr[31]}}, instr[7], instr[30:25], instr[11:8], 1'b0};
      if (instr == 32'h00100073) begin
        done <= 1;
      end else if (op == 7'h13) begin
        res = rs1v + imm;
        if (rd != 0) rf[rd] = res;
        if (rd == 10) x10 <= res;
        pc <= pc + 4;
      end else if (op == 7'h33) begin
        res = rs1v + rs2v;
        if (rd != 0) rf[rd] = res;
        if (rd == 10) x10 <= res;
        pc <= pc + 4;
      end else if (op == 7'h63) begin
        if ($signed(rs1v) < $signed(rs2v)) pc <= pc + bimm;
        else pc <= pc + 4;
      end else if (op == 7'h23) begin
        dmem[(rs1v + simm) >> 2] = rs2v;
        pc <= pc + 4;
      end else if (op == 7'h03) begin
        res = dmem[(rs1v + imm) >> 2];
        if (rd != 0) rf[rd] = res;
        if (rd == 10) x10 <= res;
        pc <= pc + 4;
      end else begin
        pc <= pc + 4;
      end
    end
  end
endmodule

module riscv_tb;
  bit clk, rst;
  bit [31:0] result;
  bit done;
  riscv_core i_core (.clk(clk), .rst(rst), .x10(result), .done(done));

  initial begin
    automatic int i;
    rst <= 1;
    clk <= #1ns 1;
    clk <= #2ns 0;
    #2ns;
    rst <= 0;
    for (i = 0; i < 340; i = i + 1) begin
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end
    assert(done == 1);
    assert(result == 5050);
    $finish;
  end
endmodule
