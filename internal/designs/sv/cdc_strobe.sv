// Strobe (toggle) clock-domain-crossing synchronizer: each source-domain
// send toggles a level, the destination domain synchronizes the level and
// recovers one pulse per toggle. The testbench counts recovered pulses.
module cdc_strobe_tb;
  bit clk_a, clk_b;
  bit send, t;
  bit s1, s2, s3;
  bit [7:0] rx_cnt;

  // Source domain: toggle on send.
  always_ff @(posedge clk_a) begin
    if (send) t <= ~t;
  end

  // Destination domain: two-flop synchronizer plus edge detector.
  always_ff @(posedge clk_b) begin
    s1 <= t;
    s2 <= s1;
    s3 <= s2;
    if (s2 ^ s3) rx_cnt <= rx_cnt + 1;
  end

  // Source domain: 20 strobes, one every eight 4ns cycles.
  initial begin
    automatic int i;
    automatic int j;
    for (i = 0; i < 20; i = i + 1) begin
      send <= 1;
      clk_a <= #1ns 1;
      clk_a <= #3ns 0;
      #4ns;
      send <= 0;
      for (j = 0; j < 7; j = j + 1) begin
        clk_a <= #1ns 1;
        clk_a <= #3ns 0;
        #4ns;
      end
    end
  end

  // Destination domain: 6ns period, runs past the last strobe.
  initial begin
    automatic int i;
    for (i = 0; i < 120; i = i + 1) begin
      clk_b <= #1ns 1;
      clk_b <= #3ns 0;
      #6ns;
    end
    assert(rx_cnt == 20);
    assert(t == 0);
    assert(s3 == t);
    $finish;
  end
endmodule
