// Package designs embeds the SystemVerilog benchmark suite of the paper's
// evaluation (Table 2): ten designs ranging from small arithmetic
// primitives to a RISC-V core, each with a self-checking testbench.
package designs

import (
	"embed"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

//go:embed sv/*.sv
var files embed.FS

// Design describes one benchmark design.
type Design struct {
	// Name is the design identifier (file stem).
	Name string
	// Display is the row label used in Table 2.
	Display string
	// Top is the testbench module to elaborate.
	Top string
	// Source is the SystemVerilog text.
	Source string
}

// table2 lists the designs in the paper's Table 2 order.
var table2 = []struct{ name, display, top string }{
	{"gray", "Gray Enc./Dec.", "gray_tb"},
	{"fir", "FIR Filter", "fir_tb"},
	{"lfsr", "LFSR", "lfsr_tb"},
	{"lzc", "Leading Zero C.", "lzc_tb"},
	{"fifo", "FIFO Queue", "fifo_tb"},
	{"cdc_gray", "CDC (Gray)", "cdc_gray_tb"},
	{"cdc_strobe", "CDC (strobe)", "cdc_strobe_tb"},
	{"rr_arbiter", "RR Arbiter", "rr_arbiter_tb"},
	{"stream_delayer", "Stream Delayer", "stream_delayer_tb"},
	{"riscv", "RISC-V Core", "riscv_tb"},
}

// All returns the benchmark designs in Table 2 order.
func All() []Design {
	out := make([]Design, 0, len(table2))
	for _, d := range table2 {
		src, err := files.ReadFile("sv/" + d.name + ".sv")
		if err != nil {
			panic(fmt.Sprintf("designs: missing embedded source for %s: %v", d.name, err))
		}
		out = append(out, Design{Name: d.name, Display: d.display, Top: d.top, Source: string(src)})
	}
	return out
}

// rv32iHexPlaceholder is the image path baked into the embedded RV32I
// source; RV32I swaps it for the caller's real image path.
const rv32iHexPlaceholder = `"rv32i.hex"`

// RV32I returns the full-ISA RV32I conformance core (not part of the
// Table 2 benchmark set) with its $readmemh program load pointed at
// hexPath. The conformance suite assembles an image per test, writes it
// next to the test's temp dir, and elaborates this design against it.
func RV32I(hexPath string) Design {
	src, err := files.ReadFile("sv/rv32i.sv")
	if err != nil {
		panic(fmt.Sprintf("designs: missing embedded source for rv32i: %v", err))
	}
	text := strings.Replace(string(src), rv32iHexPlaceholder, strconv.Quote(hexPath), 1)
	return Design{Name: "rv32i", Display: "RV32I Core", Top: "rv32i_tb", Source: text}
}

// ByName returns a single design.
func ByName(name string) (Design, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	var names []string
	for _, d := range table2 {
		names = append(names, d.name)
	}
	sort.Strings(names)
	return Design{}, fmt.Errorf("designs: unknown design %q (have %v)", name, names)
}
