package designs_test

import (
	"testing"

	"llhd/internal/designs"
	"llhd/internal/ir"
	"llhd/internal/moore"
	"llhd/internal/sim"
	"llhd/internal/simtest"
)

// TestAllDesignsCompile checks that every Table 2 design maps to valid
// Behavioural LLHD.
func TestAllDesignsCompile(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := ir.Verify(m, ir.Behavioural); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if m.Unit(d.Top) == nil {
				t.Fatalf("testbench %s missing", d.Top)
			}
		})
	}
}

// TestAllDesignsSelfCheck simulates every design with the reference
// interpreter and requires zero assertion failures.
func TestAllDesignsSelfCheck(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			s, err := sim.New(m, d.Top)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			if err := s.Run(ir.Time{}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if s.Engine.Failures != 0 {
				t.Errorf("%d assertion failures", s.Engine.Failures)
			}
		})
	}
}

// TestTracesMatchAllDesigns is the §6.1 claim: "Traces match between the
// two simulators for all designs". Every design is simulated by the
// reference interpreter and the compiled simulator; the signal-change
// traces must be identical.
func TestTracesMatchAllDesigns(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m1, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			m2, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			a, ei := simtest.InterpTrace(t, m1, d.Top)
			b, eb := simtest.BlazeTrace(t, m2, d.Top)
			simtest.CompareTraces(t, a, b)
			if ei.Failures != eb.Failures {
				t.Errorf("failure counts differ: %d vs %d", ei.Failures, eb.Failures)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := designs.ByName("riscv"); err != nil {
		t.Fatalf("ByName(riscv): %v", err)
	}
	if _, err := designs.ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}
