package designs_test

import (
	"fmt"
	"testing"

	"llhd/internal/blaze"
	"llhd/internal/designs"
	"llhd/internal/engine"
	"llhd/internal/ir"
	"llhd/internal/moore"
	"llhd/internal/sim"
)

// TestAllDesignsCompile checks that every Table 2 design maps to valid
// Behavioural LLHD.
func TestAllDesignsCompile(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := ir.Verify(m, ir.Behavioural); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if m.Unit(d.Top) == nil {
				t.Fatalf("testbench %s missing", d.Top)
			}
		})
	}
}

// TestAllDesignsSelfCheck simulates every design with the reference
// interpreter and requires zero assertion failures.
func TestAllDesignsSelfCheck(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			s, err := sim.New(m, d.Top)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			if err := s.Run(ir.Time{}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if s.Engine.Failures != 0 {
				t.Errorf("%d assertion failures", s.Engine.Failures)
			}
		})
	}
}

// TestTracesMatchAllDesigns is the §6.1 claim: "Traces match between the
// two simulators for all designs". Every design is simulated by the
// reference interpreter and the compiled simulator; the signal-change
// traces must be identical.
func TestTracesMatchAllDesigns(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m1, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			m2, err := moore.Compile(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			si, err := sim.New(m1, d.Top)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			si.Engine.Tracing = true
			if err := si.Run(ir.Time{}); err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			bz, err := blaze.New(m2, d.Top)
			if err != nil {
				t.Fatalf("blaze.New: %v", err)
			}
			bz.Engine.Tracing = true
			if err := bz.Run(ir.Time{}); err != nil {
				t.Fatalf("blaze: %v", err)
			}
			a, b := render(si.Engine), render(bz.Engine)
			if len(a) != len(b) {
				t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("traces diverge at %d:\n  interp:   %s\n  compiled: %s", i, a[i], b[i])
				}
			}
			if si.Engine.Failures != bz.Engine.Failures {
				t.Errorf("failure counts differ: %d vs %d", si.Engine.Failures, bz.Engine.Failures)
			}
		})
	}
}

func render(e *engine.Engine) []string {
	out := make([]string, 0, len(e.Trace))
	for _, te := range e.Trace {
		out = append(out, fmt.Sprintf("%v %s=%s", te.Time, te.Sig.Name, te.Value))
	}
	return out
}

func TestByName(t *testing.T) {
	if _, err := designs.ByName("riscv"); err != nil {
		t.Fatalf("ByName(riscv): %v", err)
	}
	if _, err := designs.ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}
