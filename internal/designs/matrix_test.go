package designs_test

import (
	"context"
	"testing"

	"llhd"
	"llhd/internal/designs"
	"llhd/internal/ir"
	"llhd/internal/simtest"
)

// TestLowerProducesValidIR pins the §4 pipeline on the full benchmark
// suite: lowering any Table 2 design must yield IR that passes the
// verifier — including the phi-placement and phi-edge-dominance rules the
// execution engines rely on.
func TestLowerProducesValidIR(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := llhd.Lower(m); err != nil {
				t.Fatalf("Lower: %v", err)
			}
			if err := ir.Verify(m, ir.Behavioural); err != nil {
				t.Errorf("Verify after Lower: %v", err)
			}
		})
	}
}

// TestFarmDifferentialMatrix is the full §6.1 cross-backend matrix, run as
// one concurrent farm per design: all ten Table 2 designs × {Interp,
// Blaze-bytecode, Blaze-closure, SVSim} × {unlowered, lowered via
// llhd.Lower}. Within each lowering level the interpreter and the compiled
// engine must produce identical signal-change traces, and blaze's two
// execution tiers must match each other byte for byte; across every cell
// the self-checking testbenches must report zero assertion failures (the
// SVSim and lowered-vs-unlowered legs compare through those embedded
// checks, since their signal sets legitimately differ). The farm shares
// one frozen module per (design, lowering) between the LLHD engines and
// compiles blaze once per tier.
func TestFarmDifferentialMatrix(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			unlowered, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			lowered, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := llhd.Lower(lowered); err != nil {
				t.Fatalf("Lower: %v", err)
			}

			obs := make([]*llhd.TraceObserver, 6)
			var jobs []llhd.FarmJob
			for i, leg := range []struct {
				name string
				m    *llhd.Module
				kind llhd.EngineKind
				tier llhd.BlazeTier // blaze legs only
			}{
				{"interp/unlowered", unlowered, llhd.Interp, 0},
				{"blaze/unlowered", unlowered, llhd.Blaze, llhd.TierBytecode},
				{"blaze-closure/unlowered", unlowered, llhd.Blaze, llhd.TierClosure},
				{"interp/lowered", lowered, llhd.Interp, 0},
				{"blaze/lowered", lowered, llhd.Blaze, llhd.TierBytecode},
				{"blaze-closure/lowered", lowered, llhd.Blaze, llhd.TierClosure},
			} {
				obs[i] = &llhd.TraceObserver{}
				opts := []llhd.SessionOption{
					llhd.FromModule(leg.m), llhd.Top(d.Top),
					llhd.Backend(leg.kind), llhd.WithObserver(obs[i]),
				}
				if leg.kind == llhd.Blaze {
					opts = append(opts, llhd.WithBlazeTier(leg.tier))
				}
				jobs = append(jobs, llhd.FarmJob{Name: leg.name, Options: opts})
			}
			jobs = append(jobs, llhd.FarmJob{
				Name: "svsim",
				Options: []llhd.SessionOption{
					llhd.FromSystemVerilog(d.Source), llhd.Top(d.Top),
					llhd.Backend(llhd.SVSim),
				},
			})

			var farm llhd.Farm
			results := farm.Run(context.Background(), jobs...)
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Name, r.Err)
				}
				if r.Stats.AssertionFailures != 0 {
					t.Errorf("%s: %d assertion failures", r.Name, r.Stats.AssertionFailures)
				}
			}

			// Interp vs Blaze (bytecode tier), then tier vs tier, per
			// lowering level: identical traces.
			simtest.CompareTraces(t, simtest.Strings(obs[0]), simtest.Strings(obs[1]))
			simtest.CompareTraces(t, simtest.Strings(obs[1]), simtest.Strings(obs[2]))
			simtest.CompareTraces(t, simtest.Strings(obs[3]), simtest.Strings(obs[4]))
			simtest.CompareTraces(t, simtest.Strings(obs[4]), simtest.Strings(obs[5]))
			if !unlowered.Frozen() || !lowered.Frozen() {
				t.Error("farm must have frozen both shared modules")
			}
		})
	}
}
