package designs_test

import (
	"context"
	"testing"

	"llhd"
	"llhd/internal/designs"
	"llhd/internal/ir"
	"llhd/internal/pass"
	"llhd/internal/simtest"
)

// TestLowerProducesValidIR pins the §4 pipeline on the full benchmark
// suite: lowering any Table 2 design must yield IR that passes the
// verifier — including the phi-placement and phi-edge-dominance rules the
// execution engines rely on. It runs the pipeline with VerifyEach on, so
// an invariant break anywhere inside the fixpoint is attributed to the
// pass that introduced it rather than surfacing as a post-hoc failure.
func TestLowerProducesValidIR(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			pipeline := pass.LoweringPipeline()
			pipeline.VerifyEach = true
			if err := pipeline.RunFixpoint(m, 8); err != nil {
				t.Fatalf("Lower: %v", err)
			}
			if err := ir.Verify(m, ir.Behavioural); err != nil {
				t.Errorf("Verify after Lower: %v", err)
			}
		})
	}
}

// TestFarmDifferentialMatrix is the full §6.1 cross-backend matrix, run as
// one concurrent farm per design: all ten Table 2 designs × {Interp,
// Blaze-bytecode, Blaze-closure, SVSim} × {unlowered, lowered via
// llhd.Lower}. Within each lowering level the interpreter and the compiled
// engine must produce identical signal-change traces, and blaze's two
// execution tiers must match each other byte for byte; across every cell
// the self-checking testbenches must report zero assertion failures (the
// SVSim and lowered-vs-unlowered legs compare through those embedded
// checks, since their signal sets legitimately differ). The farm shares
// one frozen module per (design, lowering) between the LLHD engines and
// compiles blaze once per tier.
func TestFarmDifferentialMatrix(t *testing.T) {
	for _, d := range designs.All() {
		t.Run(d.Name, func(t *testing.T) {
			unlowered, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			lowered, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			if err := llhd.Lower(lowered); err != nil {
				t.Fatalf("Lower: %v", err)
			}

			obs := make([]*llhd.TraceObserver, 6)
			var jobs []llhd.FarmJob
			for i, leg := range []struct {
				name string
				m    *llhd.Module
				kind llhd.EngineKind
				tier llhd.BlazeTier // blaze legs only
			}{
				{"interp/unlowered", unlowered, llhd.Interp, 0},
				{"blaze/unlowered", unlowered, llhd.Blaze, llhd.TierBytecode},
				{"blaze-closure/unlowered", unlowered, llhd.Blaze, llhd.TierClosure},
				{"interp/lowered", lowered, llhd.Interp, 0},
				{"blaze/lowered", lowered, llhd.Blaze, llhd.TierBytecode},
				{"blaze-closure/lowered", lowered, llhd.Blaze, llhd.TierClosure},
			} {
				obs[i] = &llhd.TraceObserver{}
				opts := []llhd.SessionOption{
					llhd.FromModule(leg.m), llhd.Top(d.Top),
					llhd.Backend(leg.kind), llhd.WithObserver(obs[i]),
				}
				if leg.kind == llhd.Blaze {
					opts = append(opts, llhd.WithBlazeTier(leg.tier))
				}
				jobs = append(jobs, llhd.FarmJob{Name: leg.name, Options: opts})
			}
			jobs = append(jobs, llhd.FarmJob{
				Name: "svsim",
				Options: []llhd.SessionOption{
					llhd.FromSystemVerilog(d.Source), llhd.Top(d.Top),
					llhd.Backend(llhd.SVSim),
				},
			})

			var farm llhd.Farm
			results := farm.Run(context.Background(), jobs...)
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("%s: %v", r.Name, r.Err)
				}
				if r.Stats.AssertionFailures != 0 {
					t.Errorf("%s: %d assertion failures", r.Name, r.Stats.AssertionFailures)
				}
			}

			// Interp vs Blaze (bytecode tier), then tier vs tier, per
			// lowering level: identical traces.
			simtest.CompareTraces(t, simtest.Strings(obs[0]), simtest.Strings(obs[1]))
			simtest.CompareTraces(t, simtest.Strings(obs[1]), simtest.Strings(obs[2]))
			simtest.CompareTraces(t, simtest.Strings(obs[3]), simtest.Strings(obs[4]))
			simtest.CompareTraces(t, simtest.Strings(obs[4]), simtest.Strings(obs[5]))
			if !unlowered.Frozen() || !lowered.Frozen() {
				t.Error("farm must have frozen both shared modules")
			}
		})
	}
}

// TestCompileDeterministic pins frontend determinism: compiling the same
// source repeatedly must print byte-identical assembly. The riscv design
// used to flake here — its %rf and %imem array vars were emitted in map
// iteration order — which broke the fuzzer's mk-determinism oracle and
// would give the content-addressed design cache distinct keys for the
// same source. Fifty recompiles caught that reliably before the fix
// (sorted map iteration in the process generator).
func TestCompileDeterministic(t *testing.T) {
	for _, d := range designs.All() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			ref := llhd.AssemblyString(m)
			for i := 0; i < 50; i++ {
				m2, err := llhd.CompileSystemVerilog(d.Name, d.Source)
				if err != nil {
					t.Fatalf("recompile %d: %v", i, err)
				}
				if got := llhd.AssemblyString(m2); got != ref {
					t.Fatalf("recompile %d printed differently than the first compile", i)
				}
			}
		})
	}
}
