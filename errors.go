package llhd

import "llhd/internal/engine"

// RuntimeError is the structured simulation failure every engine error
// resolves to: the taxonomy kind, the underlying cause, the recovered
// panic value and stack for contained panics, and the simulation context
// at the point of failure (instant, executed instants, applied events,
// executing process). Match kinds with errors.Is against the Err*
// sentinels; get at the context with errors.As:
//
//	var re *llhd.RuntimeError
//	if errors.As(err, &re) {
//	    log.Printf("failed in %s at %v after %d instants", re.Proc, re.Time, re.DeltaSteps)
//	}
type RuntimeError = engine.RuntimeError

// The error taxonomy: every runtime failure a Session or Farm reports is
// classified as exactly one of these sentinel kinds, carried by a
// *RuntimeError. errors.Is matches both the kind and the cause chain
// (e.g. a cancellation matches ErrCanceled and context.Canceled).
var (
	// ErrStepLimit: the deterministic instant budget (WithStepLimit, or an
	// engine's internal livelock guard) was exhausted.
	ErrStepLimit = engine.ErrStepLimit
	// ErrDeadline: the wall-clock bound (WithDeadline, or a context
	// deadline) passed.
	ErrDeadline = engine.ErrDeadline
	// ErrCanceled: the WithContext context was cancelled.
	ErrCanceled = engine.ErrCanceled
	// ErrMemoryLimit: the approximate heap watermark (WithMemoryLimit) was
	// exceeded.
	ErrMemoryLimit = engine.ErrMemoryLimit
	// ErrEventLimit: the event quota (WithEventLimit) was exceeded.
	ErrEventLimit = engine.ErrEventLimit
	// ErrAssertFailed: an assertion failure was promoted to an error.
	ErrAssertFailed = engine.ErrAssertFailed
	// ErrInternal: an engine defect or a design that provoked one — a
	// contained panic, a malformed drive, an interpreter fault.
	ErrInternal = engine.ErrInternal
)

// ErrorClass returns the stable short slug of an error's taxonomy kind:
// "step-limit", "deadline", "canceled", "memory-limit", "event-limit",
// "assert", "panic" (a RuntimeError holding a recovered panic),
// "internal", or "error" for errors outside the taxonomy. The fuzzer's
// failure classes and llhd-sim's exit codes are derived from it.
func ErrorClass(err error) string {
	return engine.KindName(err)
}
