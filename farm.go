package llhd

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// FarmJob is one simulation to run: a session configuration (the same
// options NewSession takes) plus an optional time limit. Jobs that share a
// design should share it explicitly — the same *Module via FromModule, the
// same *CompiledDesign via FromCompiled, or the same source string via
// FromSystemVerilog; the farm then runs them concurrently over one frozen
// copy instead of N private ones.
type FarmJob struct {
	// Name labels the job in its FarmResult; purely informational.
	Name string
	// Options configure the session, exactly as for NewSession.
	Options []SessionOption
	// Until bounds the run like Session.RunUntil; the zero Time runs the
	// simulation to quiescence.
	Until Time
}

// FarmResult is the outcome of one FarmJob.
type FarmResult struct {
	// Name and Index identify the job (Index is its position in the Run
	// call's job list).
	Name  string
	Index int
	// Stats carries the session's final statistics; valid when Err is nil.
	Stats Finish
	// Err is the first error of the job: session construction, runtime,
	// deferred output (VCD flush), or context cancellation.
	Err error
}

// Farm runs many independent simulation sessions concurrently over shared,
// frozen designs — the "one IR, many consumers" deployment shape: N
// parallel stimulus/backend/run-length configurations against a single
// in-memory design, for throughput (parameter sweeps, regression farms)
// or for cross-engine differential testing.
//
// Before any worker starts, Run prepares the shared artifacts serially:
// every module referenced by a job is frozen (Module.Freeze — structural
// mutation afterwards panics), and blaze jobs over a module are compiled
// once per distinct (module, top) pair into a shared CompiledDesign. After
// that preparation all cross-session state is immutable, so the fan-out
// takes no locks anywhere on a simulation path: each session owns its
// engine, frames, register files, and observers outright.
//
// The zero Farm is ready to use.
type Farm struct {
	// Workers caps the number of concurrently running sessions. Zero or
	// negative means GOMAXPROCS.
	Workers int
}

// Run executes the jobs across the worker pool and returns one result per
// job, in job order. It returns when every job has finished or the context
// is cancelled; cancellation is checked between instant batches, so
// long-running simulations stop promptly with ctx.Err() recorded in their
// result. A nil ctx runs without cancellation.
func (f *Farm) Run(ctx context.Context, jobs ...FarmJob) []FarmResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]FarmResult, len(jobs))
	cfgs := make([]*sessionConfig, len(jobs))

	// Serial preparation: freeze shared modules, compile blaze designs
	// once per (module, top). This is the only phase that writes to
	// cross-session state.
	type designKey struct {
		m   *Module
		top string
	}
	compiledCache := map[designKey]*CompiledDesign{}
	for i := range jobs {
		results[i] = FarmResult{Name: jobs[i].Name, Index: i}
		cfg := &sessionConfig{}
		for _, opt := range jobs[i].Options {
			opt(cfg)
		}
		if cfg.module != nil {
			cfg.module.Freeze()
		}
		if cfg.backend == Blaze && cfg.module != nil && cfg.compiled == nil {
			top := cfg.top
			if top == "" {
				top = defaultTop(cfg.module)
			}
			if top == "" {
				results[i].Err = fmt.Errorf("llhd: farm job %d: module has no entity; pass Top(name)", i)
				continue
			}
			key := designKey{cfg.module, top}
			cd, ok := compiledCache[key]
			if !ok {
				var err error
				cd, err = CompileBlaze(cfg.module, top)
				if err != nil {
					results[i].Err = fmt.Errorf("llhd: farm job %d: %w", i, err)
					continue
				}
				compiledCache[key] = cd
			}
			cfg.compiled, cfg.module = cd, nil
		}
		cfgs[i] = cfg
	}

	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i].Stats, results[i].Err = runFarmJob(ctx, cfgs[i], jobs[i].Until)
			}
		}()
	}
	for i := range jobs {
		if cfgs[i] == nil || results[i].Err != nil {
			continue // failed during preparation
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runFarmJob builds and runs one session, checking for cancellation
// between batches of simulated instants. A panic inside the session (a
// bug in an engine, or one provoked by a malformed design) is converted
// into the job's error instead of crashing the whole farm: differential
// harnesses treat "this design panics an engine" as a finding to report
// and shrink, which requires the farm to survive it.
func runFarmJob(ctx context.Context, cfg *sessionConfig, until Time) (stats Finish, err error) {
	defer func() {
		if r := recover(); r != nil {
			stats = Finish{}
			err = fmt.Errorf("llhd: session panic: %v\n%s", r, debug.Stack())
		}
	}()
	if err := ctx.Err(); err != nil {
		return Finish{}, err
	}
	s, err := newSession(cfg)
	if err != nil {
		return Finish{}, err
	}
	// Batch size trades cancellation latency against per-batch overhead;
	// 4096 instants keep both negligible.
	const batch = 4096
	s.init()
	for s.eng.RunBudget(until, batch) {
		if err := ctx.Err(); err != nil {
			s.Finish()
			return Finish{}, err
		}
	}
	if err := s.eng.Err(); err != nil {
		s.Finish()
		return Finish{}, err
	}
	stats = s.Finish()
	return stats, s.Err()
}
