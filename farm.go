package llhd

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"llhd/internal/engine"
)

// FarmJob is one simulation to run: a session configuration (the same
// options NewSession takes) plus an optional time limit. Jobs that share a
// design should share it explicitly — the same *Module via FromModule, the
// same *CompiledDesign via FromCompiled, or the same source string via
// FromSystemVerilog; the farm then runs them concurrently over one frozen
// copy instead of N private ones.
type FarmJob struct {
	// Name labels the job in its FarmResult; purely informational.
	Name string
	// Options configure the session, exactly as for NewSession.
	Options []SessionOption
	// Until bounds the run like Session.RunUntil; the zero Time runs the
	// simulation to quiescence.
	Until Time
}

// FarmResult is the outcome of one FarmJob.
type FarmResult struct {
	// Name and Index identify the job (Index is its position in the Run
	// call's job list).
	Name  string
	Index int
	// Stats carries the session's final statistics. When Err is non-nil
	// they still report the partial progress up to the failure (zero if
	// the job failed before its session ran).
	Stats Finish
	// Err is the first error of the job: session construction, runtime,
	// deferred output (VCD flush), or context cancellation. Runtime
	// failures are classified *RuntimeError values — match them with
	// errors.Is against the Err* sentinels; contained panics carry the
	// recovered value and stack (kind ErrInternal).
	Err error
}

// Farm runs many independent simulation sessions concurrently over shared,
// frozen designs — the "one IR, many consumers" deployment shape: N
// parallel stimulus/backend/run-length configurations against a single
// in-memory design, for throughput (parameter sweeps, regression farms)
// or for cross-engine differential testing.
//
// Before any worker starts, Run prepares the shared artifacts serially:
// every module referenced by a job is frozen (Module.Freeze — structural
// mutation afterwards panics), and blaze jobs over a module are compiled
// once per distinct (module, top) pair into a shared CompiledDesign. After
// that preparation all cross-session state is immutable, so the fan-out
// takes no locks anywhere on a simulation path: each session owns its
// engine, frames, register files, and observers outright.
//
// The zero Farm is ready to use.
type Farm struct {
	// Workers caps the number of concurrently running sessions. Zero or
	// negative means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, routes the preparation phase's blaze
	// compilations through the shared content-addressed design cache:
	// jobs whose content matches an already-warm design reuse it without
	// freezing or recompiling, compiles are single-flighted across
	// concurrent Run calls, and warm designs persist across Run calls
	// (unlike the per-Run dedup map used without a cache). A job's own
	// WithDesignCache option takes precedence over the farm-level cache.
	Cache *DesignCache
}

// Run executes the jobs across the worker pool and returns one result per
// job, in job order. It returns when every job has finished or the context
// is cancelled; cancellation is checked between instant batches, so
// long-running simulations stop promptly with ctx.Err() recorded in their
// result. A nil ctx runs without cancellation.
func (f *Farm) Run(ctx context.Context, jobs ...FarmJob) []FarmResult {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]FarmResult, len(jobs))
	cfgs := make([]*sessionConfig, len(jobs))

	// Serial preparation: freeze shared modules, compile blaze designs
	// once per (module, top, tier). This is the only phase that writes to
	// cross-session state.
	type designKey struct {
		m    *Module
		top  string
		tier BlazeTier
	}
	compiledCache := map[designKey]*CompiledDesign{}
	for i := range jobs {
		results[i] = FarmResult{Name: jobs[i].Name, Index: i}
		cfg := &sessionConfig{}
		for _, opt := range jobs[i].Options {
			opt(cfg)
		}
		if cfg.cache == nil && f.Cache != nil && cfg.backend == Blaze && cfg.compiled == nil {
			cfg.cache = f.Cache
		}
		if cfg.cache != nil && cfg.module != nil && cfg.compiled == nil &&
			(!cfg.backendSet || cfg.backend == Blaze) {
			// Content-addressed path: the cache resolves freezing and
			// compilation itself (a warm hit does neither) and
			// single-flights compiles across concurrent Run calls.
			cd, _, err := cfg.cache.Load(cfg.module, cfg.top, cfg.tier)
			if err != nil {
				results[i].Err = fmt.Errorf("llhd: farm job %d: %w", i, err)
				continue
			}
			cfg.compiled, cfg.module, cfg.cache = cd, nil, nil
			cfg.backend, cfg.backendSet = Blaze, true
			cfgs[i] = cfg
			continue
		}
		if cfg.module != nil {
			cfg.module.Freeze()
		}
		if cfg.backend == Blaze && cfg.module != nil && cfg.compiled == nil {
			top := cfg.top
			if top == "" {
				top = defaultTop(cfg.module)
			}
			if top == "" {
				results[i].Err = fmt.Errorf("llhd: farm job %d: module has no entity; pass Top(name)", i)
				continue
			}
			key := designKey{cfg.module, top, cfg.tier}
			cd, ok := compiledCache[key]
			if !ok {
				var err error
				cd, err = CompileBlazeTier(cfg.module, top, cfg.tier)
				if err != nil {
					results[i].Err = fmt.Errorf("llhd: farm job %d: %w", i, err)
					continue
				}
				compiledCache[key] = cd
			}
			cfg.compiled, cfg.module = cd, nil
		}
		cfgs[i] = cfg
	}

	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i].Stats, results[i].Err = runFarmJob(ctx, cfgs[i], jobs[i].Until)
			}
		}()
	}
	for i := range jobs {
		if cfgs[i] == nil || results[i].Err != nil {
			continue // failed during preparation
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runFarmJob builds and runs one session under the farm's context. The
// session boundary is the containment layer: panics inside Run/Finish (a
// bug in an engine, or one provoked by a malformed design) come back as
// classified *RuntimeError values with the captured stack, so
// differential harnesses can treat "this design panics an engine" as a
// debuggable finding to report and shrink. The deferred recover here is
// the farm's last-resort backstop for the phases outside any session
// (config application, construction); it captures the stack the same
// way. Cancellation of the farm context is polled by the engine at batch
// granularity (engine.DefaultGovernBatch instants), so long-running jobs
// stop promptly with an ErrCanceled-classified result.
func runFarmJob(ctx context.Context, cfg *sessionConfig, until Time) (stats Finish, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &engine.RuntimeError{
				Kind: engine.ErrInternal, Recovered: r, Stack: debug.Stack(),
			}
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return Finish{}, &engine.RuntimeError{Kind: engine.Classify(cerr), Cause: cerr}
	}
	if cfg.ctx == nil {
		cfg.ctx = ctx // job-level WithContext wins; the farm ctx is the default
	}
	s, err := newSession(cfg)
	if err != nil {
		return Finish{}, err
	}
	runErr := s.RunUntil(until)
	stats = s.Finish()
	if runErr != nil {
		return stats, runErr
	}
	return stats, s.Err()
}
