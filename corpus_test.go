package llhd_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"llhd"
	"llhd/internal/fuzz"
)

// TestCorpusReplay re-runs every checked-in repro under testdata/corpus
// through the full differential oracle: .llhd entries across {Interp,
// Blaze} × {unlowered, lowered}, .sv entries additionally through the
// SVSim AST engine. The corpus pins the five PR-4 lowering miscompiles
// (and every future fuzzer finding) as a regression net that is
// independent of the Table 2 matrix test.
func TestCorpusReplay(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("testdata/corpus is empty")
	}
	ran := 0
	for _, path := range entries {
		name := filepath.Base(path)
		switch filepath.Ext(path) {
		case ".llhd":
			ran++
			t.Run(name, func(t *testing.T) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if f := fuzz.CheckText(name, string(data), fuzz.Options{}); f != nil {
					t.Errorf("corpus repro fails the differential oracle:\n%s", f.Reason)
				}
			})
		case ".sv":
			ran++
			t.Run(name, func(t *testing.T) {
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				top := svTopModule(string(data))
				if top == "" {
					t.Fatalf("cannot find a module in %s", path)
				}
				if f := fuzz.CheckSV(name, string(data), top, fuzz.Options{}); f != nil {
					t.Errorf("corpus repro fails the three-engine oracle:\n%s", f.Reason)
				}
			})
		}
	}
	if ran < 6 {
		t.Errorf("expected at least the five PR-4 repros plus one .sv entry, replayed %d", ran)
	}
}

var moduleRe = regexp.MustCompile(`(?m)^\s*module\s+(\w+)`)

// svTopModule picks the testbench module of an .sv corpus entry: the
// first *_tb module, else the last module defined.
func svTopModule(src string) string {
	last := ""
	for _, m := range moduleRe.FindAllStringSubmatch(src, -1) {
		last = m[1]
		if strings.HasSuffix(m[1], "_tb") {
			return m[1]
		}
	}
	return last
}

// TestSessionStepLimit pins the deterministic runaway guard the fuzzing
// harness relies on: a never-quiescing design stopped by WithStepLimit
// reports an error instead of hanging.
func TestSessionStepLimit(t *testing.T) {
	m, err := llhd.ParseAssembly("spin", spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := llhd.NewSession(llhd.FromModule(m), llhd.Top("spin_tb"),
		llhd.Backend(llhd.Interp), llhd.WithStepLimit(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("unbounded design under WithStepLimit(100) must error")
	} else if !strings.Contains(err.Error(), "step limit") {
		t.Errorf("unexpected error: %v", err)
	}
	if got := s.Finish().DeltaSteps; got > 100 {
		t.Errorf("executed %d instants, limit was 100", got)
	}
}
