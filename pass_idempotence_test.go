package llhd_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhd"
	"llhd/internal/designs"
	"llhd/internal/fuzz"
	"llhd/internal/pass"
)

// TestPassIdempotence pins per-pass convergence: every registered pass,
// run twice in a row on the same module, must report changed == false on
// the second run. A pass that keeps reporting change on its own output
// would oscillate under RunFixpoint and burn the iteration cap instead of
// converging. Each pass is checked from two starting states per input —
// the freshly built behavioural module and the fully lowered one — over
// every Table 2 design and every checked-in corpus entry.
func TestPassIdempotence(t *testing.T) {
	type input struct {
		name string
		mk   func(t *testing.T) *llhd.Module
	}
	var inputs []input
	for _, d := range designs.All() {
		d := d
		inputs = append(inputs, input{name: d.Name, mk: func(t *testing.T) *llhd.Module {
			m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			return m
		}})
	}
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.llhd"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range entries {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".llhd")
		inputs = append(inputs, input{name: "corpus/" + name, mk: func(t *testing.T) *llhd.Module {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := llhd.ParseAssembly(name, string(data))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			return m
		}})
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries found; idempotence coverage lost")
	}

	// Pipeline states: the idempotence bugs found by the pipeline fuzzer
	// only reproduce on pass orderings the fixed lowering pipeline never
	// visits, so fresh and fully-lowered modules alone can't pin the
	// fixes. Each entry replays a generated design through the exact
	// pipeline of a past finding, then the loop below demands every pass
	// be idempotent on that state. Seed 37 pinned tcfe running phi-to-mux
	// after its merge fixpoint instead of jointly with it; seed 55 pinned
	// constant-fold not re-folding after its branch stage collapsed a
	// single-entry phi to a constant.
	pipelineStates := []struct {
		seed int64
		pipe []string
	}{
		{37, []string{"signal-forwarding", "mem2reg", "deseq", "ecm"}},
		{55, []string{"ecm", "ecm", "process-lowering", "mem2reg", "tcm", "cse"}},
	}
	for _, ps := range pipelineStates {
		ps := ps
		name := fmt.Sprintf("fuzz-seed%d-%s", ps.seed, strings.Join(ps.pipe, ","))
		inputs = append(inputs, input{name: name, mk: func(t *testing.T) *llhd.Module {
			m := fuzz.Generate(fuzz.Config{Seed: ps.seed})
			pl, err := pass.FromNames(ps.pipe)
			if err != nil {
				t.Fatalf("FromNames: %v", err)
			}
			if _, err := pl.Run(m); err != nil {
				t.Fatalf("prep pipeline: %v", err)
			}
			return m
		}})
	}

	states := []struct {
		name string
		prep func(t *testing.T, m *llhd.Module)
	}{
		{"behavioural", func(t *testing.T, m *llhd.Module) {}},
		{"lowered", func(t *testing.T, m *llhd.Module) {
			if err := llhd.Lower(m); err != nil {
				t.Fatalf("Lower: %v", err)
			}
		}},
	}
	for _, in := range inputs {
		for _, st := range states {
			for _, info := range pass.Registry() {
				info := info
				t.Run(in.name+"/"+st.name+"/"+info.Name, func(t *testing.T) {
					m := in.mk(t)
					st.prep(t, m)
					p := info.New()
					if _, err := p.Run(m); err != nil {
						t.Fatalf("first run: %v", err)
					}
					changed, err := p.Run(m)
					if err != nil {
						t.Fatalf("second run: %v", err)
					}
					if changed {
						t.Errorf("pass %q reported change on its own output", info.Name)
					}
				})
			}
		}
	}
}
