package llhd

import (
	"fmt"

	"llhd/internal/assembly"
	"llhd/internal/designcache"
	"llhd/internal/ir"
	"llhd/internal/moore"
)

// DesignCache is the content-addressed compiled-design cache: a blaze
// design compiles once per content, ever, no matter how many sessions,
// farm jobs, or server submissions reference it. The cache key is a
// stable hash of the module's bitcode encoding plus the top name and
// execution tier, so two independently parsed copies of the same design
// share one CompiledDesign.
//
// Three layers, hot to cold: an in-process LRU of warm compiled designs
// (a hit skips freeze and compile), a source memo keyed by raw source
// bytes (a hit skips the frontend and lowering too), and an optional
// on-disk layer (WithCacheDir) persisting bitcode artifacts across
// runs, so a fresh process skips the frontend by decoding the persisted
// lowered bitcode and only repeats the process-local compile step.
// Concurrent lookups of one key are single-flighted: N concurrent
// submissions of one design compile exactly once.
//
// A DesignCache is safe for concurrent use and adds zero cost to
// simulation hot paths — it is consulted only at session-construction
// time. Share one cache between NewSession (WithDesignCache), Farm
// (Farm.Cache), and the simulation server.
type DesignCache struct {
	c *designcache.Cache
}

// CacheStats is a snapshot of cache effectiveness counters: hits,
// misses, actual compiles (the single-flight dedup bound), LRU
// evictions, source-memo hits, and on-disk artifact reloads.
type CacheStats = designcache.Stats

// CacheOption configures NewDesignCache.
type CacheOption func(*designcache.Config)

// WithCacheCapacity bounds the resident compiled designs (LRU); zero or
// negative means unbounded (the default). Evicted designs stay valid
// for sessions already holding them — the cache merely stops retaining
// them.
func WithCacheCapacity(n int) CacheOption {
	return func(cfg *designcache.Config) { cfg.Capacity = n }
}

// WithCacheDir enables the persistent on-disk layer under dir (created
// if missing): bitcode artifacts and source memos survive process
// restarts, so a design submitted to a fresh process skips the frontend
// and lowering. The directory may be shared by concurrent processes;
// writes are atomic and corrupt artifacts self-heal by re-parsing.
func WithCacheDir(dir string) CacheOption {
	return func(cfg *designcache.Config) { cfg.Dir = dir }
}

// NewDesignCache builds a design cache.
func NewDesignCache(opts ...CacheOption) (*DesignCache, error) {
	var cfg designcache.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := designcache.New(cfg)
	if err != nil {
		return nil, err
	}
	return &DesignCache{c: c}, nil
}

// SetCompileHook installs f to be invoked (with the content address)
// right before each actual blaze compilation. Cache hits and coalesced
// concurrent lookups never invoke it, which is what makes it the
// compile-count probe for metrics and the dedup tests. Install hooks
// before handing the cache to concurrent users.
func (dc *DesignCache) SetCompileHook(f func(key string)) {
	if f == nil {
		dc.c.SetOnCompile(nil)
		return
	}
	dc.c.SetOnCompile(func(k designcache.Key) { f(k.String()) })
}

// Stats returns a snapshot of the effectiveness counters.
func (dc *DesignCache) Stats() CacheStats { return dc.c.Stats() }

// Load returns the compiled design for (m, top, tier), compiling at
// most once per content. The hit result reports a warm hit: the design
// was already resident and m was neither frozen nor compiled; on a miss
// m is frozen (Module.Freeze) and retained by the design. An empty top
// resolves to the module's last entity.
func (dc *DesignCache) Load(m *Module, top string, tier BlazeTier) (*CompiledDesign, bool, error) {
	return dc.c.Load(m, top, tier)
}

// LoadAssembly is Load for LLHD assembly source: a warm source hit skips
// the parser too, and with the on-disk layer the parse survives process
// restarts. With lower set, the §4 lowering pipeline runs before
// hashing, so the artifact (and the cache key) is the lowered design.
func (dc *DesignCache) LoadAssembly(name, src, top string, tier BlazeTier, lower bool) (*CompiledDesign, bool, error) {
	meta := fmt.Sprintf("llhd\x00%s\x00%t", name, lower)
	return dc.c.LoadSource(meta, []byte(src), top, tier, func() (*ir.Module, error) {
		m, err := assembly.Parse(name, src)
		if err != nil {
			return nil, err
		}
		if lower {
			if err := Lower(m); err != nil {
				return nil, err
			}
		}
		return m, nil
	})
}

// LoadSystemVerilog is LoadAssembly for SystemVerilog source compiled
// through the Moore frontend: a warm source hit skips the frontend, and
// with lower set also the lowering pipeline.
func (dc *DesignCache) LoadSystemVerilog(name, src, top string, tier BlazeTier, lower bool) (*CompiledDesign, bool, error) {
	meta := fmt.Sprintf("sv\x00%s\x00%t", name, lower)
	return dc.c.LoadSource(meta, []byte(src), top, tier, func() (*ir.Module, error) {
		m, err := moore.Compile(name, src)
		if err != nil {
			return nil, err
		}
		if lower {
			if err := Lower(m); err != nil {
				return nil, err
			}
		}
		return m, nil
	})
}

// WithDesignCache routes the session's blaze compilation through the
// cache: on a warm hit the session reuses the resident CompiledDesign
// and skips parse, lowering, freeze, and compile entirely. Implies
// Backend(Blaze); combining it with another explicit backend or with
// FromCompiled is an error. Module input is keyed by content hash;
// FromSystemVerilog input additionally goes through the source memo, so
// a repeat submission skips the Moore frontend too.
func WithDesignCache(dc *DesignCache) SessionOption {
	return func(c *sessionConfig) { c.cache = dc }
}
