// RISC-V: assemble an RV32I program with the internal assembler, execute
// it on the reference ISS, then simulate the full RV32I conformance core
// (program loaded via $readmemh) and cross-check the two. The program
// sums the integers 1..100, exposes the sum on the core's dump stream,
// and reports pass through the riscv-tests tohost protocol.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"llhd"
	"llhd/internal/designs"
	"llhd/internal/riscv"
)

const program = `
# sum the integers 1..100 into x10
  li x1, 0            # i
  li x10, 0           # sum
loop:
  addi x1, x1, 1
  add x10, x10, x1
  li x2, 100
  bne x1, x2, loop
  sw x10, 260(x0)     # dump stream: expose the sum
  li x3, 1
  sw x3, 256(x0)      # tohost = 1: pass, halt
`

func main() {
	words, err := riscv.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// Leg 1: the reference ISS, the independent golden model.
	iss := riscv.NewISS(words)
	if err := iss.Run(10_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ISS:  x10 = %d after %d steps, tohost = %d\n",
		iss.Regs[10], iss.Steps, iss.ToHost)

	// Leg 2: the RV32I core in SystemVerilog, loading the same image
	// through $readmemh and simulated on the compiled engine.
	dir, err := os.MkdirTemp("", "rv32i-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	hexPath := filepath.Join(dir, "sum.hex")
	f, err := os.Create(hexPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := riscv.WriteHex(f, words); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	d := designs.RV32I(hexPath)
	obs := &llhd.TraceObserver{}
	s, err := llhd.NewSession(
		llhd.FromSystemVerilog(d.Source), llhd.Top(d.Top),
		llhd.Backend(llhd.Blaze), llhd.WithObserver(obs),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	stats := s.Finish()

	// Recover the core's final tohost and its dump stream from the trace
	// (dump entries carry a sequence number in the upper 32 bits).
	var tohost uint64
	var dumps []uint64
	for _, te := range obs.Entries {
		switch {
		case strings.HasSuffix(te.Sig.Name, "tohost"):
			tohost = te.Value.Bits
		case strings.HasSuffix(te.Sig.Name, "dump"):
			dumps = append(dumps, te.Value.Bits&0xFFFFFFFF)
		}
	}
	fmt.Printf("core: tohost = %d, dump stream = %v, assertion failures = %d\n",
		tohost, dumps, stats.AssertionFailures)

	if tohost != uint64(iss.ToHost) || len(dumps) != len(iss.Dump) ||
		(len(dumps) > 0 && dumps[0] != uint64(iss.Dump[0])) {
		log.Fatal("core and ISS disagree")
	}
	fmt.Println("core and ISS agree: 1..100 sums to", dumps[0])
}
