// RISC-V: compile the RV32I core of the benchmark suite from
// SystemVerilog, simulate it on both engines, and compare: the preloaded
// program sums the integers 1..100 and halts with the result in x10.
package main

import (
	"fmt"
	"log"
	"time"

	"llhd"
	"llhd/internal/designs"
)

func main() {
	d, err := designs.ByName("riscv")
	if err != nil {
		log.Fatal(err)
	}
	m1, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	interp, err := llhd.NewSession(llhd.FromModule(m1), llhd.Top(d.Top), llhd.Backend(llhd.Interp))
	if err != nil {
		log.Fatal(err)
	}
	if err := interp.Run(); err != nil {
		log.Fatal(err)
	}
	interpTime := time.Since(t0)
	interpStats := interp.Finish()

	t0 = time.Now()
	compiled, err := llhd.NewSession(llhd.FromModule(m2), llhd.Top(d.Top), llhd.Backend(llhd.Blaze))
	if err != nil {
		log.Fatal(err)
	}
	if err := compiled.Run(); err != nil {
		log.Fatal(err)
	}
	compiledTime := time.Since(t0)
	compiledStats := compiled.Finish()

	result, _ := interp.Probe("riscv_tb.result")
	done, _ := interp.Probe("riscv_tb.done")
	fmt.Printf("core halted: done=%s, x10 = %s (want 5050)\n", done, result)
	fmt.Printf("assertion failures: interpreter %d, compiled %d\n",
		interpStats.AssertionFailures, compiledStats.AssertionFailures)
	fmt.Printf("interpreter: %v (%d delta steps)\n", interpTime, interpStats.DeltaSteps)
	fmt.Printf("compiled:    %v (%d delta steps)\n", compiledTime, compiledStats.DeltaSteps)
}
