// RISC-V: compile the RV32I core of the benchmark suite from
// SystemVerilog, simulate it on both engines, and compare: the preloaded
// program sums the integers 1..100 and halts with the result in x10.
package main

import (
	"fmt"
	"log"
	"time"

	"llhd"
	"llhd/internal/designs"
)

func main() {
	d, err := designs.ByName("riscv")
	if err != nil {
		log.Fatal(err)
	}
	m1, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	interp, err := llhd.NewInterpreter(m1, d.Top)
	if err != nil {
		log.Fatal(err)
	}
	if err := interp.Run(llhd.Time{}); err != nil {
		log.Fatal(err)
	}
	interpTime := time.Since(t0)

	t0 = time.Now()
	compiled, err := llhd.NewCompiled(m2, d.Top)
	if err != nil {
		log.Fatal(err)
	}
	if err := compiled.Run(llhd.Time{}); err != nil {
		log.Fatal(err)
	}
	compiledTime := time.Since(t0)

	result := interp.Engine.SignalByName("riscv_tb.result")
	done := interp.Engine.SignalByName("riscv_tb.done")
	fmt.Printf("core halted: done=%s, x10 = %s (want 5050)\n", done.Value(), result.Value())
	fmt.Printf("assertion failures: interpreter %d, compiled %d\n",
		interp.Engine.Failures, compiled.Engine.Failures)
	fmt.Printf("interpreter: %v (%d delta steps)\n", interpTime, interp.Engine.DeltaCount)
	fmt.Printf("compiled:    %v (%d delta steps)\n", compiledTime, compiled.Engine.DeltaCount)
}
