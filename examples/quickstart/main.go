// Quickstart: parse the paper's Figure 2 testbench (LLHD assembly) and
// simulate it through the unified Session API — batch-run on the
// reference interpreter with a streamed VCD waveform, then re-run the
// same design stepped on the compiled engine, and finally run a
// three-backend differential sweep concurrently through the session farm.
// Switching engines is one option; everything else (Run, Step, Probe,
// Finish) is identical.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"llhd"
)

// counterSrc is a small SystemVerilog design for the farm sweep: the
// SVSim backend executes the source AST directly, so the differential
// matrix needs SystemVerilog input.
const counterSrc = `
module counter_tb;
  bit clk;
  bit [7:0] count;
  initial begin
    automatic int i;
    for (i = 0; i < 10; i = i + 1) begin
      clk <= #5ns 1;
      clk <= #10ns 0;
      #10ns;
    end
  end
  always_ff @(posedge clk) count <= count + 1;
endmodule
`

// figure2 is the accumulator testbench of Figure 2 of the paper, with the
// accumulator implementation of Figure 5 (iteration count reduced so the
// example finishes instantly).
const figure2 = `
entity @acc_tb () -> () {
  %zero0 = const i1 0
  %zero1 = const i32 0
  %clk = sig i1 %zero0
  %en = sig i1 %zero0
  %x = sig i32 %zero1
  %q = sig i32 %zero1
  inst @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q)
  inst @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en)
}
proc @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en) {
 entry:
  %bit0 = const i1 0
  %bit1 = const i1 1
  %zero = const i32 0
  %one = const i32 1
  %many = const i32 100
  %del1ns = const time 1ns
  %del2ns = const time 2ns
  %i = var i32 %zero
  drv i1$ %en, %bit1 after %del2ns
  br %loop
 loop:
  %ip = ld i32* %i
  drv i32$ %x, %ip after %del2ns
  drv i1$ %clk, %bit1 after %del1ns
  drv i1$ %clk, %bit0 after %del2ns
  wait %next for %del2ns
 next:
  %qp = prb i32$ %q
  %in = add i32 %ip, %one
  st i32* %i, %in
  %cont = ult i32 %ip, %many
  br %cont, %end, %loop
 end:
  halt
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q)
  inst @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d)
}
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
 init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
 check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
 event:
  %dp = prb i32$ %d
  %delay = const time 1ns
  drv i32$ %q, %dp after %delay
  br %init
}
proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
 entry:
  %qp = prb i32$ %q
  %enp = prb i1$ %en
  %delay = const time 2ns
  drv i32$ %d, %qp after %delay
  br %enp, %final, %enabled
 enabled:
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %d, %sum after %delay
  br %final
 final:
  wait %entry for %q, %x, %en
}
`

func main() {
	m, err := llhd.ParseAssembly("acc_tb", figure2)
	if err != nil {
		log.Fatal(err)
	}
	if err := llhd.Verify(m, llhd.Behavioural); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d units; module level: %v\n", len(m.Units), llhd.LevelOf(m))

	// Batch run on the reference interpreter, streaming a VCD waveform.
	var wave strings.Builder
	sess, err := llhd.NewSession(
		llhd.FromModule(m),
		llhd.Top("acc_tb"),
		llhd.Backend(llhd.Interp),
		llhd.WithVCD(&wave),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		log.Fatal(err)
	}
	q, _ := sess.Probe("acc_tb.q")
	st := sess.Finish()
	fmt.Printf("simulation finished at %v after %d delta steps, %d events\n",
		st.Now, st.DeltaSteps, st.Events)
	fmt.Printf("accumulator output q = %s\n", q)
	fmt.Printf("VCD waveform: %d lines (open in any viewer)\n",
		strings.Count(wave.String(), "\n"))

	// The same design, stepped instant by instant on the compiled engine.
	m2, err := llhd.ParseAssembly("acc_tb", figure2)
	if err != nil {
		log.Fatal(err)
	}
	stepped, err := llhd.NewSession(
		llhd.FromModule(m2),
		llhd.Top("acc_tb"),
		llhd.Backend(llhd.Blaze),
	)
	if err != nil {
		log.Fatal(err)
	}
	steps := 0
	for {
		more, err := stepped.Step()
		if err != nil {
			log.Fatal(err)
		}
		steps++
		if !more {
			break
		}
	}
	q2, _ := stepped.Probe("acc_tb.q")
	stepped.Finish() // releases engine resources; required for SVSim sessions
	fmt.Printf("stepped run (blaze): %d instants, q = %s\n", steps, q2)

	// Differential sweep: one design, all three engines, run concurrently
	// through the session farm. The farm freezes the shared module and
	// compiles the blaze code once before fanning out, so the sessions
	// share every static artifact and still race on nothing.
	counter, err := llhd.CompileSystemVerilog("counter", counterSrc)
	if err != nil {
		log.Fatal(err)
	}
	interpTrace, blazeTrace := &llhd.TraceObserver{}, &llhd.TraceObserver{}
	var farm llhd.Farm
	results := farm.Run(context.Background(),
		llhd.FarmJob{Name: "interp", Options: []llhd.SessionOption{
			llhd.FromModule(counter), llhd.Top("counter_tb"),
			llhd.Backend(llhd.Interp), llhd.WithObserver(interpTrace)}},
		llhd.FarmJob{Name: "blaze", Options: []llhd.SessionOption{
			llhd.FromModule(counter), llhd.Top("counter_tb"),
			llhd.Backend(llhd.Blaze), llhd.WithObserver(blazeTrace)}},
		llhd.FarmJob{Name: "svsim", Options: []llhd.SessionOption{
			llhd.FromSystemVerilog(counterSrc), llhd.Top("counter_tb"),
			llhd.Backend(llhd.SVSim)}},
	)
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("farm %s: %v", r.Name, r.Err)
		}
		fmt.Printf("farm %-6s finished at %v (%d delta steps, %d assertion failures)\n",
			r.Name, r.Stats.Now, r.Stats.DeltaSteps, r.Stats.AssertionFailures)
	}
	agree := len(interpTrace.Entries) == len(blazeTrace.Entries)
	for i := range interpTrace.Entries {
		if !agree {
			break
		}
		a, b := interpTrace.Entries[i], blazeTrace.Entries[i]
		agree = a.Time == b.Time && a.Sig.Name == b.Sig.Name && a.Value.Eq(b.Value)
	}
	fmt.Printf("interp and blaze traces identical: %v (%d changes)\n",
		agree, len(interpTrace.Entries))
}
