// Serveclient: the llhd-serve client walkthrough. It boots the
// simulation server in-process on an ephemeral port (the HTTP surface
// is identical to a standalone `llhd-serve -addr :8080`), then walks
// the full client lifecycle:
//
//  1. submit a SystemVerilog design to POST /v1/sim/stream and consume
//     the NDJSON response line by line — signal deltas in deterministic
//     kernel order, then one terminal result object,
//  2. resubmit the identical design and observe the content-addressed
//     cache hit: the server skips the frontend and the compile, and the
//     streamed bytes are the same,
//  3. read GET /v1/stats for the cache and scheduling counters,
//  4. provoke a quota rejection (a 2-instant step budget) and show the
//     structured failure: HTTP 429 with the "step-limit" class slug.
//
// Everything here works the same against a remote server — replace
// `base` with its URL.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"llhd/internal/simserver"
)

const designSrc = `
module counter_tb;
  bit clk;
  bit [7:0] count;
  initial begin
    automatic int i;
    for (i = 0; i < 10; i = i + 1) begin
      clk <= #5ns 1;
      clk <= #10ns 0;
      #10ns;
    end
  end
  always_ff @(posedge clk) count <= count + 1;
endmodule
`

func main() {
	// Boot the server in-process. A standalone deployment is just
	// `llhd-serve -addr :8080 -cache-dir /var/cache/llhd` — the client
	// side below does not change.
	srv, err := simserver.New(simserver.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 1. Submit the design and stream the deltas. The request is one
	// JSON object; the response is NDJSON: delta lines, then a result.
	req := simserver.Request{Design: designSrc, Kind: "sv", Top: "counter_tb"}
	res := streamRun(base, req, true)
	fmt.Printf("cold run: class=%s cache=%s, finished at %s after %d instants\n\n",
		res.Class, res.Cache, res.Now, res.DeltaSteps)

	// 2. Resubmit. Same content hash -> the compiled design is reused;
	// no parse, no lowering, no compile.
	res = streamRun(base, req, false)
	fmt.Printf("warm run: class=%s cache=%s (frontend and compile skipped)\n\n", res.Class, res.Cache)

	// 3. Server-side counters: cache effectiveness and scheduling.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	pretty, _ := json.MarshalIndent(stats, "", "  ")
	fmt.Printf("stats: %s\n\n", pretty)

	// 4. Quotas are mandatory and structured: an impossible budget dies
	// as a clean taxonomy slug with the mapped HTTP status, mirroring
	// llhd-sim's exit codes (quota -> 429, like exit status 2).
	tiny := req
	tiny.Steps = 2
	payload, _ := json.Marshal(tiny)
	resp, err = http.Post(base+"/v1/sim/stream", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	var rejected simserver.Result
	if err := json.NewDecoder(resp.Body).Decode(&rejected); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("quota rejection: HTTP %d, class=%q\n", resp.StatusCode, rejected.Class)
}

// streamRun posts one streaming submission and consumes the NDJSON
// response: every line but the last is a Delta, the last is the Result.
func streamRun(base string, req simserver.Request, echoDeltas bool) simserver.Result {
	payload, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sim/stream", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("stream status %d", resp.StatusCode)
	}

	var res simserver.Result
	shown, total := 0, 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		var delta simserver.Delta
		if err := json.Unmarshal(line, &delta); err == nil && delta.Sig != "" {
			total++
			if echoDeltas && shown < 5 {
				fmt.Printf("  delta: t=%-6s %s = %s\n", delta.T, delta.Sig, delta.Val)
				shown++
			}
			continue
		}
		// Not a delta: the terminal result line.
		if err := json.Unmarshal(line, &res); err != nil {
			log.Fatalf("unexpected stream line %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if echoDeltas {
		fmt.Printf("  ... %d deltas total\n", total)
	}
	return res
}
