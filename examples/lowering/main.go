// Lowering: compile the SystemVerilog accumulator of Figure 3 with the
// Moore frontend and run the §4 behavioural-to-structural pipeline,
// reproducing the end-to-end transformation of Figure 5: the always_ff and
// always_comb processes become a single entity holding one reg instruction
// with a rise trigger and an enable gate.
package main

import (
	"fmt"
	"log"

	"llhd"
)

const accSV = `
module acc (input clk, input [31:0] x, input en, output [31:0] q);
  bit [31:0] d;
  always_ff @(posedge clk) q <= #1ns d;
  always_comb begin
    d <= #2ns q;
    if (en) d <= #2ns q+x;
  end
endmodule
`

func main() {
	m, err := llhd.CompileSystemVerilog("acc", accSV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Behavioural LLHD (as emitted by Moore, Figure 5 left) ===")
	fmt.Println(llhd.AssemblyString(m))

	if err := llhd.Lower(m); err != nil {
		log.Fatal(err)
	}
	if err := llhd.Verify(m, llhd.Structural); err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Structural LLHD (after ECM/TCM/TCFE/PL/Deseq, Figure 5 right) ===")
	fmt.Println(llhd.AssemblyString(m))
	fmt.Printf("module level after lowering: %v\n", llhd.LevelOf(m))
}
