package llhd_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"llhd"
)

// farmTrace runs one job list through a farm and fails on any job error.
func farmRun(t *testing.T, f *llhd.Farm, jobs ...llhd.FarmJob) []llhd.FarmResult {
	t.Helper()
	results := f.Run(context.Background(), jobs...)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("farm job %d (%s): %v", r.Index, r.Name, r.Err)
		}
	}
	return results
}

// TestFarmThreeBackendSweep is the quickstart scenario: one design, three
// engines, run as a farm, traces and statistics compared across backends.
func TestFarmThreeBackendSweep(t *testing.T) {
	m, err := llhd.CompileSystemVerilog("toggle", toggleSrc)
	if err != nil {
		t.Fatal(err)
	}
	interpObs, blazeObs := &llhd.TraceObserver{}, &llhd.TraceObserver{}
	jobs := []llhd.FarmJob{
		{Name: "interp", Options: []llhd.SessionOption{
			llhd.FromModule(m), llhd.Top("toggle_tb"),
			llhd.Backend(llhd.Interp), llhd.WithObserver(interpObs)}},
		{Name: "blaze", Options: []llhd.SessionOption{
			llhd.FromModule(m), llhd.Top("toggle_tb"),
			llhd.Backend(llhd.Blaze), llhd.WithObserver(blazeObs)}},
		{Name: "svsim", Options: []llhd.SessionOption{
			llhd.FromSystemVerilog(toggleSrc), llhd.Top("toggle_tb"),
			llhd.Backend(llhd.SVSim)}},
	}
	results := farmRun(t, &llhd.Farm{}, jobs...)

	if !m.Frozen() {
		t.Error("the farm must freeze shared modules before fanning out")
	}
	for _, r := range results {
		if r.Stats.AssertionFailures != 0 {
			t.Errorf("%s: %d assertion failures", r.Name, r.Stats.AssertionFailures)
		}
		if r.Stats.DeltaSteps == 0 {
			t.Errorf("%s: empty statistics %+v", r.Name, r.Stats)
		}
	}
	if results[0].Stats.DeltaSteps != results[1].Stats.DeltaSteps {
		t.Errorf("interp and blaze executed different instant counts: %d vs %d",
			results[0].Stats.DeltaSteps, results[1].Stats.DeltaSteps)
	}
	// The §6.1 differential check: identical observer streams.
	if len(interpObs.Entries) == 0 || len(interpObs.Entries) != len(blazeObs.Entries) {
		t.Fatalf("trace lengths: interp %d, blaze %d", len(interpObs.Entries), len(blazeObs.Entries))
	}
	for i := range interpObs.Entries {
		a, b := interpObs.Entries[i], blazeObs.Entries[i]
		as := fmt.Sprintf("%v %s=%s", a.Time, a.Sig.Name, a.Value)
		bs := fmt.Sprintf("%v %s=%s", b.Time, b.Sig.Name, b.Value)
		if as != bs {
			t.Fatalf("traces diverge at %d: %s vs %s", i, as, bs)
		}
	}
}

// TestFarmSharesOneCompiledDesign pins the blaze sharing contract: the
// farm compiles a module exactly once per (module, top) and all blaze
// jobs run over that one sealed design; an explicitly precompiled design
// works the same way through FromCompiled.
func TestFarmSharesOneCompiledDesign(t *testing.T) {
	m, err := llhd.CompileSystemVerilog("toggle", toggleSrc)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := llhd.CompileBlaze(m, "toggle_tb")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	jobs := make([]llhd.FarmJob, n)
	for i := range jobs {
		jobs[i] = llhd.FarmJob{
			Name:    fmt.Sprintf("shared-%d", i),
			Options: []llhd.SessionOption{llhd.FromCompiled(cd)},
		}
	}
	results := farmRun(t, &llhd.Farm{Workers: 4}, jobs...)
	want := results[0].Stats
	for _, r := range results {
		if r.Stats != want {
			t.Errorf("%s: statistics diverge: %+v vs %+v", r.Name, r.Stats, want)
		}
		if r.Stats.AssertionFailures != 0 {
			t.Errorf("%s: %d assertion failures", r.Name, r.Stats.AssertionFailures)
		}
	}

	// Contradictory options against a compiled design must error, not
	// silently simulate the design's own top/backend.
	if _, err := llhd.NewSession(llhd.FromCompiled(cd), llhd.Top("other_tb")); err == nil {
		t.Error("FromCompiled with a mismatching Top must fail")
	}
	if _, err := llhd.NewSession(llhd.FromCompiled(cd), llhd.Backend(llhd.SVSim)); err == nil {
		t.Error("FromCompiled with a non-blaze backend must fail")
	}
}

// TestCompileBlazeFailureLeavesModuleUnfrozen pins the error contract of
// the compile-then-freeze order: a failed compile must not brick the
// caller's module, since freezing is irreversible.
func TestCompileBlazeFailureLeavesModuleUnfrozen(t *testing.T) {
	const badCall = `
proc @p () -> (i1$ %q) {
 entry:
  call void @missing ()
  halt
}
entity @bad_tb () -> () {
  %z = const i1 0
  %q = sig i1 %z
  inst @p () -> (i1$ %q)
}
`
	m, err := llhd.ParseAssembly("bad", badCall)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := llhd.CompileBlaze(m, "bad_tb"); err == nil {
		t.Fatal("CompileBlaze of a design calling an undefined function must fail")
	}
	if m.Frozen() {
		t.Error("failed CompileBlaze must leave the module unfrozen")
	}
}

// spinSrc never quiesces: a 1ns self-retriggering clock, for cancellation
// and run-length tests.
const spinSrc = `
proc @spin () -> (i1$ %q) {
 entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %d = const time 1ns
  br %hi
 hi:
  drv i1$ %q, %b1 after %d
  wait %lo for %d
 lo:
  drv i1$ %q, %b0 after %d
  wait %hi for %d
}
entity @spin_tb () -> () {
  %z = const i1 0
  %q = sig i1 %z
  inst @spin () -> (i1$ %q)
}
`

// TestFarmUntilBoundsJobs checks the per-job run length: a never-ending
// design stops at its Until limit.
func TestFarmUntilBoundsJobs(t *testing.T) {
	m, err := llhd.ParseAssembly("spin", spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	limit := llhd.Time{Fs: 100 * 1_000_000} // 100ns
	results := farmRun(t, &llhd.Farm{}, llhd.FarmJob{
		Options: []llhd.SessionOption{llhd.FromModule(m), llhd.Top("spin_tb")},
		Until:   limit,
	})
	if now := results[0].Stats.Now; now.Fs > limit.Fs {
		t.Errorf("job ran past its limit: %v", now)
	}
	if results[0].Stats.DeltaSteps == 0 {
		t.Error("bounded job executed nothing")
	}
}

// TestFarmContextCancellation checks that a cancelled context stops
// unbounded jobs promptly and surfaces ctx.Err in their results.
func TestFarmContextCancellation(t *testing.T) {
	m, err := llhd.ParseAssembly("spin", spinSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan []llhd.FarmResult, 1)
	go func() {
		var f llhd.Farm
		done <- f.Run(ctx, llhd.FarmJob{
			Options: []llhd.SessionOption{llhd.FromModule(m), llhd.Top("spin_tb")},
		})
	}()
	select {
	case results := <-done:
		if results[0].Err == nil {
			t.Fatal("cancelled unbounded job must report an error")
		}
		if !strings.Contains(results[0].Err.Error(), "context canceled") {
			t.Errorf("unexpected error: %v", results[0].Err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("farm did not stop after cancellation")
	}
}

// TestFarmReportsPreparationErrors checks that a broken job config fails
// its own result without poisoning the rest of the farm.
func TestFarmReportsPreparationErrors(t *testing.T) {
	m, err := llhd.CompileSystemVerilog("toggle", toggleSrc)
	if err != nil {
		t.Fatal(err)
	}
	var f llhd.Farm
	results := f.Run(context.Background(),
		llhd.FarmJob{Name: "bad", Options: []llhd.SessionOption{llhd.Top("nope")}},
		llhd.FarmJob{Name: "good", Options: []llhd.SessionOption{
			llhd.FromModule(m), llhd.Top("toggle_tb")}},
	)
	if results[0].Err == nil {
		t.Error("job without a source must fail")
	}
	if results[1].Err != nil {
		t.Errorf("healthy job failed: %v", results[1].Err)
	}
}

// TestUnfrozenModuleSingleSessionCompat is the compatibility regression
// for the freeze contract: a module that was never frozen still elaborates
// and simulates on every LLHD engine (the lazy, single-session path), and
// freezing it afterwards changes nothing observable.
func TestUnfrozenModuleSingleSessionCompat(t *testing.T) {
	run := func(m *llhd.Module, kind llhd.EngineKind) llhd.Finish {
		s, err := llhd.NewSession(llhd.FromModule(m), llhd.Top("toggle_tb"), llhd.Backend(kind))
		if err != nil {
			t.Fatalf("NewSession(%v): %v", kind, err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("Run(%v): %v", kind, err)
		}
		return s.Finish()
	}
	for _, kind := range []llhd.EngineKind{llhd.Interp, llhd.Blaze} {
		m, err := llhd.CompileSystemVerilog("toggle", toggleSrc)
		if err != nil {
			t.Fatal(err)
		}
		if m.Frozen() {
			t.Fatal("CompileSystemVerilog must not freeze")
		}
		lazy := run(m, kind)
		m.Freeze()
		frozen := run(m, kind)
		if lazy != frozen {
			t.Errorf("%v: unfrozen and frozen runs disagree: %+v vs %+v", kind, lazy, frozen)
		}
	}
}
