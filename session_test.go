package llhd_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"llhd"
	"llhd/internal/designs"
)

// updateGolden regenerates testdata golden files instead of comparing:
//
//	go test -run VCDGolden -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// toggleSrc is a tiny self-contained design used by the session tests: a
// clock generator plus a rising-edge counter.
const toggleSrc = `
module toggle_tb;
  bit clk;
  bit [7:0] count;
  initial begin
    automatic int i;
    for (i = 0; i < 10; i = i + 1) begin
      clk <= #5ns 1;
      clk <= #10ns 0;
      #10ns;
    end
  end
  always_ff @(posedge clk) count <= count + 1;
endmodule
`

func sessionFor(t *testing.T, kind llhd.EngineKind, extra ...llhd.SessionOption) *llhd.Session {
	t.Helper()
	opts := append([]llhd.SessionOption{
		llhd.FromSystemVerilog(toggleSrc),
		llhd.Top("toggle_tb"),
		llhd.Backend(kind),
	}, extra...)
	s, err := llhd.NewSession(opts...)
	if err != nil {
		t.Fatalf("NewSession(%v): %v", kind, err)
	}
	return s
}

// TestSessionAllEngines runs the same design through NewSession on all
// three engines and checks they agree on the result and the probe API.
func TestSessionAllEngines(t *testing.T) {
	for _, kind := range []llhd.EngineKind{llhd.Interp, llhd.Blaze, llhd.SVSim} {
		t.Run(kind.String(), func(t *testing.T) {
			s := sessionFor(t, kind)
			if err := s.Run(); err != nil {
				t.Fatalf("Run: %v", err)
			}
			count, ok := s.Probe("toggle_tb.count")
			if !ok {
				t.Fatal("Probe(toggle_tb.count): signal not found")
			}
			if count.Bits != 10 {
				t.Errorf("count = %d, want 10", count.Bits)
			}
			if _, ok := s.Probe("toggle_tb.nope"); ok {
				t.Error("Probe of unknown path must report false")
			}
			st := s.Finish()
			if st.DeltaSteps == 0 || st.Events == 0 {
				t.Errorf("empty statistics: %+v", st)
			}
			if st.AssertionFailures != 0 {
				t.Errorf("%d assertion failures", st.AssertionFailures)
			}
			if st.Now.Fs != 100*1_000_000 { // 100ns in fs
				t.Errorf("finished at %v, want 100ns", st.Now)
			}
		})
	}
}

// TestSessionStep single-steps a session to completion and checks the
// instant count against a batch run's statistics.
func TestSessionStep(t *testing.T) {
	batch := sessionFor(t, llhd.Interp)
	if err := batch.Run(); err != nil {
		t.Fatal(err)
	}
	want := batch.Finish().DeltaSteps

	s := sessionFor(t, llhd.Interp)
	steps := 0
	for {
		more, err := s.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		steps++
		if !more {
			break
		}
	}
	if steps != want {
		t.Errorf("stepped %d instants, batch run executed %d", steps, want)
	}
	if got := s.Finish().DeltaSteps; got != want {
		t.Errorf("stepped DeltaSteps = %d, want %d", got, want)
	}
}

// TestSessionRunUntil checks bounded execution: time must not pass the
// limit, remaining events stay queued, and a later unbounded Run picks up
// where the bounded one stopped.
func TestSessionRunUntil(t *testing.T) {
	s := sessionFor(t, llhd.Blaze)
	if err := s.RunUntil(llhd.Time{Fs: 42 * 1_000_000}); err != nil {
		t.Fatal(err)
	}
	if now := s.Now(); now.Fs > 42*1_000_000 {
		t.Errorf("RunUntil(42ns) stopped at %v", now)
	}
	count, _ := s.Probe("toggle_tb.count")
	if count.Bits != 4 {
		t.Errorf("count at 42ns = %d, want 4", count.Bits)
	}
	if s.Pending() == 0 {
		t.Error("events beyond the limit must stay queued")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	count, _ = s.Probe("toggle_tb.count")
	if count.Bits != 10 {
		t.Errorf("count after resume = %d, want 10", count.Bits)
	}
	s.Finish()
}

// TestSessionObserver checks observer wiring through the session options:
// an all-signals observer and a path-filtered one.
func TestSessionObserver(t *testing.T) {
	all := &llhd.TraceObserver{}
	var clkChanges int
	counting := observerFunc(func(tm llhd.Time, sig *llhd.Signal, v llhd.Value) { clkChanges++ })
	s := sessionFor(t, llhd.Interp,
		llhd.WithObserver(all),
		llhd.WithObserver(counting, "toggle_tb.clk"),
	)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if len(all.Entries) == 0 {
		t.Fatal("buffering observer saw nothing")
	}
	if clkChanges != 20 {
		t.Errorf("clk observer fired %d times, want 20 (10 cycles)", clkChanges)
	}
	if clkChanges >= len(all.Entries) {
		t.Errorf("filtered observer (%d) must see fewer changes than the full stream (%d)",
			clkChanges, len(all.Entries))
	}
}

type observerFunc func(llhd.Time, *llhd.Signal, llhd.Value)

func (f observerFunc) OnChange(t llhd.Time, s *llhd.Signal, v llhd.Value) { f(t, s, v) }

// TestSessionErrors pins the constructor's misuse diagnostics.
func TestSessionErrors(t *testing.T) {
	m, err := llhd.CompileSystemVerilog("toggle", toggleSrc)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []llhd.SessionOption
	}{
		{"no source", []llhd.SessionOption{llhd.Top("x")}},
		{"both sources", []llhd.SessionOption{llhd.FromModule(m), llhd.FromSystemVerilog(toggleSrc)}},
		{"svsim needs source", []llhd.SessionOption{llhd.FromModule(m), llhd.Backend(llhd.SVSim)}},
		{"svsim needs top", []llhd.SessionOption{llhd.FromSystemVerilog(toggleSrc), llhd.Backend(llhd.SVSim)}},
		{"unknown observer path", []llhd.SessionOption{
			llhd.FromModule(m), llhd.Top("toggle_tb"),
			llhd.WithObserver(&llhd.TraceObserver{}, "toggle_tb.nope")}},
		{"unknown top", []llhd.SessionOption{llhd.FromModule(m), llhd.Top("nope")}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := llhd.NewSession(c.opts...); err == nil {
				t.Error("NewSession unexpectedly succeeded")
			}
		})
	}
}

// failAfterWriter accepts n Write calls, then errors: a disk-full
// stand-in.
type failAfterWriter struct{ n int }

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	w.n--
	return len(p), nil
}

// TestSessionVCDErrorSurfacesOnFinish checks that a stepped-only session
// (which never flushes mid-run) still reports a failed waveform write:
// Finish flushes and Err surfaces the error.
func TestSessionVCDErrorSurfacesOnFinish(t *testing.T) {
	// One successful Write covers the header flush in NewSession; the
	// change-stream flush in Finish must then fail.
	s := sessionFor(t, llhd.Interp, llhd.WithVCD(&failAfterWriter{n: 1}))
	for {
		more, err := s.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !more {
			break
		}
	}
	s.Finish()
	if s.Err() == nil {
		t.Error("Err must report the VCD write failure flushed by Finish")
	}
}

// TestSessionTraceEquivalence is the §6.1 cross-engine claim expressed
// through the public API: identical buffered traces from the interpreter
// and the compiled engine for the same module.
func TestSessionTraceEquivalence(t *testing.T) {
	render := func(kind llhd.EngineKind) []string {
		obs := &llhd.TraceObserver{}
		s := sessionFor(t, kind, llhd.WithObserver(obs))
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		s.Finish()
		out := make([]string, len(obs.Entries))
		for i, te := range obs.Entries {
			out[i] = fmt.Sprintf("%v %s=%s", te.Time, te.Sig.Name, te.Value)
		}
		return out
	}
	a, b := render(llhd.Interp), render(llhd.Blaze)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("trace lengths: interp %d, blaze %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// checkVCDGolden validates the full waveform pipeline on a Table 2
// design: SystemVerilog in, session with WithVCD, byte-exact standard VCD
// out. Regenerate with -update-golden after intentional format or
// elaboration-naming changes.
func checkVCDGolden(t *testing.T, designName string) {
	t.Helper()
	d, err := designs.ByName(designName)
	if err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	s, err := llhd.NewSession(
		llhd.FromSystemVerilog(d.Source),
		llhd.Top(d.Top),
		llhd.Backend(llhd.Interp),
		llhd.WithVCD(&got),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st := s.Finish(); st.AssertionFailures != 0 {
		t.Fatalf("%d assertion failures", st.AssertionFailures)
	}

	golden := filepath.Join("testdata", designName+".vcd")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		gl, wl := strings.Split(got.String(), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("VCD diverges from golden at line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("VCD length differs from golden: got %d lines, want %d", len(gl), len(wl))
	}
}

func TestVCDGoldenRRArbiter(t *testing.T) { checkVCDGolden(t, "rr_arbiter") }

// TestVCDGoldenFifo pins scope naming on a second, deeper hierarchy (the
// FIFO queue), so elaboration renames cannot slip through on a design the
// rr_arbiter golden happens not to cover.
func TestVCDGoldenFifo(t *testing.T) { checkVCDGolden(t, "fifo") }
