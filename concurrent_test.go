package llhd_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"llhd"
	"llhd/internal/designs"
)

// concurrentSessions is the farm's race envelope: enough goroutines to
// collide on every shared artifact (numberings, bind/const tables, blaze
// code) under `go test -race`.
const concurrentSessions = 16

// TestConcurrentSessionsSharedFrozenModule spins 16 fully concurrent
// sessions per backend over one shared frozen design and requires every
// session to produce the exact single-session result. Under -race this is
// the enforcement hook for the freeze contract: ir.Numbering reads,
// engine.Instance bind/const table construction, and blaze's shared
// compiled code must all be read-only after the serial preparation.
func TestConcurrentSessionsSharedFrozenModule(t *testing.T) {
	m, err := llhd.CompileSystemVerilog("toggle", toggleSrc)
	if err != nil {
		t.Fatal(err)
	}
	m.Freeze()
	cd, err := llhd.CompileBlaze(m, "toggle_tb")
	if err != nil {
		t.Fatal(err)
	}

	source := map[llhd.EngineKind][]llhd.SessionOption{
		llhd.Interp: {llhd.FromModule(m), llhd.Top("toggle_tb"), llhd.Backend(llhd.Interp)},
		llhd.Blaze:  {llhd.FromCompiled(cd)},
		llhd.SVSim:  {llhd.FromSystemVerilog(toggleSrc), llhd.Top("toggle_tb"), llhd.Backend(llhd.SVSim)},
	}
	for kind, opts := range source {
		t.Run(kind.String(), func(t *testing.T) {
			errs := make([]error, concurrentSessions)
			var wg sync.WaitGroup
			for g := 0; g < concurrentSessions; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s, err := llhd.NewSession(opts...)
					if err != nil {
						errs[g] = err
						return
					}
					if err := s.Run(); err != nil {
						errs[g] = err
						return
					}
					count, ok := s.Probe("toggle_tb.count")
					if !ok || count.Bits != 10 {
						errs[g] = fmt.Errorf("count = %v (ok=%v), want 10", count.Bits, ok)
					}
					if st := s.Finish(); st.AssertionFailures != 0 {
						errs[g] = fmt.Errorf("%d assertion failures", st.AssertionFailures)
					}
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Errorf("session %d: %v", g, err)
				}
			}
		})
	}
}

// TestConcurrentSessionsTable2Design repeats the race envelope on a real
// Table 2 design (rr_arbiter: hierarchy, reg storage, projections) so the
// shared blaze code paths beyond the toggle microdesign — reg histories,
// wait lists, probed sensitivity — are all exercised concurrently.
func TestConcurrentSessionsTable2Design(t *testing.T) {
	d, err := designs.ByName("rr_arbiter")
	if err != nil {
		t.Fatal(err)
	}
	m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := llhd.CompileBlaze(m, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]llhd.SessionOption{
		{llhd.FromModule(m), llhd.Top(d.Top), llhd.Backend(llhd.Interp)},
		{llhd.FromCompiled(cd)},
	} {
		opts := opts
		errs := make([]error, concurrentSessions)
		var wg sync.WaitGroup
		for g := 0; g < concurrentSessions; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s, err := llhd.NewSession(opts...)
				if err != nil {
					errs[g] = err
					return
				}
				if err := s.Run(); err != nil {
					errs[g] = err
					return
				}
				if st := s.Finish(); st.AssertionFailures != 0 {
					errs[g] = fmt.Errorf("%d assertion failures", st.AssertionFailures)
				}
			}(g)
		}
		wg.Wait()
		for g, err := range errs {
			if err != nil {
				t.Errorf("session %d: %v", g, err)
			}
		}
	}
}

// TestConcurrentBytecodeTierSharedDesign is the bytecode tier's race
// envelope: one frozen module, one sealed bytecode CompiledDesign, 16
// fully concurrent sessions executing the shared flat instruction streams
// through per-session frames. Under -race this enforces that the lowered
// Units (code, aux pools, const templates, wait shapes) are never written
// after sealing — only the per-session register files are. Every
// concurrent trace must match a serial closure-tier reference session
// byte for byte, so the tiers are also cross-checked under contention.
func TestConcurrentBytecodeTierSharedDesign(t *testing.T) {
	d, err := designs.ByName("cdc_gray")
	if err != nil {
		t.Fatal(err)
	}
	m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		t.Fatal(err)
	}
	cd, err := llhd.CompileBlazeTier(m, d.Top, llhd.TierBytecode)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Tier() != llhd.TierBytecode {
		t.Fatalf("Tier() = %v, want bytecode", cd.Tier())
	}

	// Serial closure-tier reference over the same frozen module.
	refObs := &llhd.TraceObserver{}
	ref, err := llhd.NewSession(llhd.FromModule(m), llhd.Top(d.Top),
		llhd.Backend(llhd.Blaze), llhd.WithBlazeTier(llhd.TierClosure),
		llhd.WithObserver(refObs))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	ref.Finish()
	want := traceStrings(refObs)

	errs := make([]error, concurrentSessions)
	traces := make([][]string, concurrentSessions)
	var wg sync.WaitGroup
	for g := 0; g < concurrentSessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			obs := &llhd.TraceObserver{}
			s, err := llhd.NewSession(llhd.FromCompiled(cd), llhd.WithObserver(obs))
			if err != nil {
				errs[g] = err
				return
			}
			if err := s.Run(); err != nil {
				errs[g] = err
				return
			}
			if st := s.Finish(); st.AssertionFailures != 0 {
				errs[g] = fmt.Errorf("%d assertion failures", st.AssertionFailures)
				return
			}
			traces[g] = traceStrings(obs)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", g, err)
		}
	}
	for g, tr := range traces {
		if len(tr) != len(want) {
			t.Fatalf("session %d: trace length %d, closure reference %d", g, len(tr), len(want))
		}
		for i := range tr {
			if tr[i] != want[i] {
				t.Fatalf("session %d: trace diverges from closure reference at %d: %q vs %q",
					g, i, tr[i], want[i])
			}
		}
	}
}

// traceStrings renders a buffered trace for comparison.
func traceStrings(o *llhd.TraceObserver) []string {
	out := make([]string, 0, len(o.Entries))
	for _, te := range o.Entries {
		out = append(out, fmt.Sprintf("%v %s=%s", te.Time, te.Sig.Name, te.Value))
	}
	return out
}

// TestConcurrentVCDMatchesSerial checks that waveform output is oblivious
// to farm concurrency: two sessions writing VCD concurrently over one
// frozen design each produce a byte-identical file to a serial run.
func TestConcurrentVCDMatchesSerial(t *testing.T) {
	d, err := designs.ByName("rr_arbiter")
	if err != nil {
		t.Fatal(err)
	}
	m, err := llhd.CompileSystemVerilog(d.Name, d.Source)
	if err != nil {
		t.Fatal(err)
	}
	m.Freeze()

	render := func(kind llhd.EngineKind) []byte {
		var buf bytes.Buffer
		s, err := llhd.NewSession(
			llhd.FromModule(m), llhd.Top(d.Top), llhd.Backend(kind), llhd.WithVCD(&buf))
		if err != nil {
			t.Errorf("NewSession(%v): %v", kind, err)
			return nil
		}
		if err := s.Run(); err != nil {
			t.Errorf("Run(%v): %v", kind, err)
			return nil
		}
		s.Finish()
		return buf.Bytes()
	}

	serialInterp := render(llhd.Interp)
	serialBlaze := render(llhd.Blaze)
	if len(serialInterp) == 0 || len(serialBlaze) == 0 {
		t.Fatal("serial reference runs produced no VCD")
	}

	var wg sync.WaitGroup
	concurrent := make([][]byte, 2)
	for i, kind := range []llhd.EngineKind{llhd.Interp, llhd.Blaze} {
		wg.Add(1)
		go func(i int, kind llhd.EngineKind) {
			defer wg.Done()
			concurrent[i] = render(kind)
		}(i, kind)
	}
	wg.Wait()

	if !bytes.Equal(concurrent[0], serialInterp) {
		t.Error("concurrent interp VCD differs from its serial run")
	}
	if !bytes.Equal(concurrent[1], serialBlaze) {
		t.Error("concurrent blaze VCD differs from its serial run")
	}
}
